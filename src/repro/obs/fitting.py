"""Scaling-law fits and complexity verdicts for the observatory.

The paper's claims are growth *shapes* — flat delay for free-connex ACQs
(Theorem 4.6), linear total time for acyclic evaluation (Theorem 4.2),
conditional superlinear lower bounds (Theorems 4.8/4.9) — so a benchmark
measurement is only meaningful as a fitted log-log slope, and a slope is
only meaningful with its uncertainty.  This module fits least-squares
slopes on log-log axes *with confidence intervals* and turns the fitted
interval into a categorical **verdict** that can be compared against the
expectation the classifier (:mod:`repro.core.classify`) derives from the
query's structure.

Why interval-based verdicts rather than point estimates: a point slope of
0.31 measured over three noisy sizes says nothing — the same data are
compatible with flat and with linear growth.  The verdict logic therefore
works on the CI widened by a noise-tolerance band, and refuses to decide
(``inconclusive``) when the size sweep spans less than one decade or the
interval covers more than one candidate shape.  DESIGN.md documents the
policy; :mod:`tests.test_obs_fitting` pins it on synthetic slopes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

#: the verdict vocabulary, in increasing growth order.  ``superlinear``
#: covers clearly-worse-than-linear fits that do not land in the
#: quadratic band (e.g. the naive triangle join at ~||D||^1.5).
VERDICTS = ("constant-delay", "linear", "quadratic", "superlinear",
            "inconclusive")

#: target slopes for the named shapes
SHAPE_TARGETS = {
    "constant-delay": 0.0,
    "linear": 1.0,
    "quadratic": 2.0,
}

#: verdicts that certify worse-than-linear growth
SUPERLINEAR_FAMILY = frozenset({"quadratic", "superlinear"})

#: minimum log10 span of the size sweep for a conclusive verdict — below
#: one decade a slope fit is dominated by constant factors and cache
#: effects, so the anti-flake rule forces ``inconclusive``
MIN_DECADES = 1.0

#: minimum sweep points for a fit to count as *reliable*: with fewer the
#: residual degrees of freedom are zero, the CI is infinite, and the
#: slope is pure interpolation.  Verdicts refuse below this, and
#: :meth:`SlopeFit.to_dict` carries the flag so downstream consumers
#: (reports, snapshot files) can suppress the number instead of printing
#: a two-point "slope" as if it measured anything
MIN_FIT_POINTS = 3

#: default half-width of the noise-tolerance band added around the CI
SLOPE_TOLERANCE = 0.25

# two-sided 95% Student-t critical values by degrees of freedom (no
# scipy in the container; beyond the table 1.96 is used)
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131,
        20: 2.086, 30: 2.042}


def _t_critical(df: int) -> float:
    if df <= 0:
        return math.inf
    if df in _T95:
        return _T95[df]
    for bound in sorted(_T95):
        if df < bound:
            return _T95[bound]
    return 1.96


@dataclass(frozen=True)
class SlopeFit:
    """A least-squares fit of log10(value) against log10(size)."""

    slope: float
    intercept: float
    stderr: float
    ci_low: float
    ci_high: float
    n_points: int
    decades: float
    r_squared: float

    @property
    def reliable(self) -> bool:
        """Whether the slope is a measurement rather than interpolation:
        at least :data:`MIN_FIT_POINTS` points and a finite CI."""
        return self.n_points >= MIN_FIT_POINTS and math.isfinite(self.stderr)

    def to_dict(self) -> dict:
        """JSON-able rendering (infinities become None)."""
        def _num(x: float) -> Optional[float]:
            return x if math.isfinite(x) else None

        return {
            "slope": _num(self.slope),
            "intercept": _num(self.intercept),
            "stderr": _num(self.stderr),
            "ci_low": _num(self.ci_low),
            "ci_high": _num(self.ci_high),
            "n_points": self.n_points,
            "decades": _num(self.decades),
            "r_squared": _num(self.r_squared),
            "reliable": self.reliable,
        }

    def __str__(self) -> str:
        if not math.isfinite(self.stderr):
            return f"{self.slope:.2f} [?]"
        return f"{self.slope:.2f} [{self.ci_low:.2f}, {self.ci_high:.2f}]"


def fit_loglog(sizes: Sequence[float], values: Sequence[float],
               floor: float = 1e-9) -> SlopeFit:
    """Fit log10(value) ~ slope * log10(size) + intercept.

    Values are clamped below by ``floor`` (timers can report ~0 for
    trivial inputs).  The 95% CI uses the Student-t quantile on the
    residual standard error; with fewer than three points the interval
    is infinite (stderr ``inf``), which the verdict logic reads as
    inconclusive.
    """
    points = [(math.log10(s), math.log10(max(v, floor)))
              for s, v in zip(sizes, values) if s > 0]
    n = len(points)
    positive = [s for s in sizes if s > 0]
    decades = (math.log10(max(positive) / min(positive))
               if len(positive) >= 2 else 0.0)
    if n < 2:
        return SlopeFit(0.0, 0.0, math.inf, -math.inf, math.inf,
                        n, decades, 0.0)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    sxx = sum((x - mean_x) ** 2 for x, _ in points)
    if sxx == 0:
        return SlopeFit(0.0, mean_y, math.inf, -math.inf, math.inf,
                        n, decades, 0.0)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in points)
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    sse = sum((y - (intercept + slope * x)) ** 2 for x, y in points)
    syy = sum((y - mean_y) ** 2 for _, y in points)
    r_squared = 1.0 - sse / syy if syy > 0 else 1.0
    if n > 2:
        stderr = math.sqrt(max(sse, 0.0) / (n - 2) / sxx)
        half = _t_critical(n - 2) * stderr
    else:
        stderr = math.inf
        half = math.inf
    return SlopeFit(slope, intercept, stderr, slope - half, slope + half,
                    n, decades, r_squared)


def verdict_from_fit(fit: SlopeFit,
                     min_decades: float = MIN_DECADES,
                     min_points: int = MIN_FIT_POINTS,
                     tolerance: float = SLOPE_TOLERANCE) -> str:
    """Map a fitted slope interval to one of :data:`VERDICTS`.

    The decision interval is the 95% CI widened to at least
    ``slope +- tolerance`` (the noise band: CPython timers jitter even
    when the fit happens to be tight).  A shape is certified only when
    its target slope is the *unique* candidate inside the interval;
    an interval covering two candidates, too few points, or a size sweep
    under ``min_decades`` decades all yield ``inconclusive``.
    """
    if fit.n_points < min_points or fit.decades < min_decades:
        return "inconclusive"
    lo = min(fit.ci_low, fit.slope - tolerance)
    hi = max(fit.ci_high, fit.slope + tolerance)
    contained = [name for name, target in SHAPE_TARGETS.items()
                 if lo <= target <= hi]
    if len(contained) == 1:
        return contained[0]
    if contained:
        return "inconclusive"
    if lo > 1.0:
        return "superlinear"
    return "inconclusive"


def fit_and_judge(sizes: Sequence[float], values: Sequence[float],
                  **kwargs) -> "tuple[SlopeFit, str]":
    """Convenience: the fit and its verdict in one call."""
    fit = fit_loglog(sizes, values)
    return fit, verdict_from_fit(fit, **kwargs)


# -------------------------------------------------------- expectations


def expected_verdict(query, metric_kind: str) -> Optional[str]:
    """The verdict the theory predicts for ``query`` and a metric kind.

    ``metric_kind`` is one of ``delay`` (per-answer enumeration delay),
    ``total`` (full evaluation wall time), ``preprocessing``
    (Section 2.3.3 phase one).  The mapping follows the classifier
    (:func:`repro.core.classify.classify`):

    * free-connex ACQ + ``delay``  -> ``constant-delay`` (Theorem 4.6);
    * acyclic, not free-connex + ``delay`` -> ``linear`` (Theorem 4.3);
    * acyclic + ``total``/``preprocessing`` -> ``linear``
      (Theorems 4.2 / 4.6; output size grows linearly on the standard
      random workloads);
    * cyclic + anything -> ``superlinear`` (Theorems 4.8 / 4.9
      conditional lower bounds).

    Self-join queries gate on the *effective* structure — the best of
    the query and its homomorphic core (``effective_acyclic``,
    ``effective_free_connex``; Carmeli-Segoufin, arXiv 2206.04988) —
    because the classifier's verdicts, and any evaluator that minimises
    first, ride on the core.  For self-join-free queries the effective
    facts coincide with the syntactic ones.

    Returns ``None`` when the classification carries no shape claim for
    the metric (e.g. comparisons, where even deciding is W[1]-hard).
    """
    from repro.core.classify import classify

    report = classify(query)
    facts = report.facts
    if facts.get("has_order_comparisons"):
        return None
    acyclic = facts.get("effective_acyclic", facts.get("acyclic", False))
    if metric_kind == "delay":
        if facts.get("effective_free_connex", facts.get("free_connex")):
            return "constant-delay"
        if acyclic:
            return "linear"
        return "superlinear"
    if metric_kind in ("total", "preprocessing"):
        return "linear" if acyclic else "superlinear"
    raise ValueError(f"unknown metric kind {metric_kind!r}")


def verdict_matches(measured: str, expected: Optional[str]) -> Optional[bool]:
    """Does a measured verdict satisfy the expectation?

    Returns ``None`` (no judgement) when there is no expectation or the
    measurement is inconclusive; superlinear expectations are satisfied
    by any member of :data:`SUPERLINEAR_FAMILY` (a conditional lower
    bound promises *worse than linear*, not an exact exponent).
    """
    if expected is None or measured == "inconclusive":
        return None
    if expected in SUPERLINEAR_FAMILY:
        return measured in SUPERLINEAR_FAMILY
    return measured == expected
