"""Trace exporters: Chrome trace-event JSON, explain trees, metrics.

Three renderings of one :class:`~repro.obs.trace.Tracer`:

* :func:`chrome_trace` — the Chrome/Perfetto trace-event format
  (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
  each span becomes one complete (``"ph": "X"``) event with
  microsecond ``ts``/``dur`` relative to the tracer's epoch, each
  counter one ``"ph": "C"`` event — open the file in ``chrome://tracing``
  or https://ui.perfetto.dev;
* :func:`render_explain` — a human-readable span tree with per-phase
  wall times and inline attributes, plus the counter/gauge tables
  (the ``repro explain`` output);
* :func:`metrics_dump` — a flat JSON-serialisable dict of counters,
  gauges, plan-cache statistics and the calibrated timer overhead, the
  machine-readable side channel for CI diffs.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.obs.trace import Span, Tracer


def _jsonable(value: Any) -> Any:
    """Coerce an attribute value into something JSON can carry."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """The trace-event list: one ``X`` event per span, one ``C`` event
    per counter (timestamped at the trace end).

    Spans adopted from pool workers carry their own ``pid``
    (:meth:`repro.obs.trace.Tracer.adopt`), so the export lays the
    fan-out on separate process tracks; ``process_name`` metadata
    events label the driver vs the workers.  Events are emitted in
    ``start_ns`` order — adopted worker spans arrive after the driver's
    own, so begin order alone would break the monotonic-``ts`` property
    trace viewers (and the trace lint) expect.  Sampled spans carry
    their ``trace_id``/``span_id``/``parent_id`` in ``args``, so one
    request's events are joinable across process tracks."""
    epoch = tracer.epoch_ns
    pid = os.getpid()
    events: List[Dict[str, Any]] = []
    last_end = epoch
    worker_pids = set()
    for span in sorted(tracer.spans, key=lambda s: s.start_ns):
        end_ns = span.end_ns if span.end_ns is not None else span.start_ns
        last_end = max(last_end, end_ns)
        span_pid = span.pid if span.pid is not None else pid
        if span_pid != pid:
            worker_pids.add(span_pid)
        args = {k: _jsonable(v) for k, v in span.attrs.items()}
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "ph": "X",
            "cat": "repro",
            "ts": (span.start_ns - epoch) / 1e3,  # microseconds
            "dur": (end_ns - span.start_ns) / 1e3,
            "pid": span_pid,
            "tid": span.tid,
            "args": args,
        })
    if worker_pids:
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": "repro driver"}})
        for wpid in sorted(worker_pids):
            events.append({"name": "process_name", "ph": "M", "pid": wpid,
                           "tid": 0, "args": {"name": "repro worker"}})
    ts_end = (last_end - epoch) / 1e3
    for name in sorted(tracer.counters):
        events.append({
            "name": name,
            "ph": "C",
            "cat": "repro",
            "ts": ts_end,
            "pid": pid,
            "tid": 0,
            "args": {"value": _jsonable(tracer.counters[name])},
        })
    return events


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The full trace document (object form, with metadata)."""
    other: Dict[str, Any] = {
        "tool": "repro.obs",
        "gauges": {k: _jsonable(v) for k, v in tracer.gauges.items()},
    }
    context = getattr(tracer, "context", None)
    if context is not None and context.sampled:
        other["trace_id"] = context.trace_id
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(path: str, tracer: Tracer) -> str:
    """Serialise :func:`chrome_trace` to ``path``; returns ``path``."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh, indent=1)
        fh.write("\n")
    return path


# ------------------------------------------------------------------- explain


def _format_ms(ns: int) -> str:
    return f"{ns / 1e6:10.3f} ms"


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={_jsonable(v)}" for k, v in attrs.items())
    return f"  ({inner})"


def _render_span(span: Span, prefix: str, is_last: bool,
                 lines: List[str]) -> None:
    branch = "└─ " if is_last else "├─ "
    label = f"{prefix}{branch}{span.name}"
    pad = max(1, 58 - len(label))
    lines.append(f"{label}{' ' * pad}{_format_ms(span.duration_ns)}"
                 f"{_format_attrs(span.attrs)}")
    child_prefix = prefix + ("   " if is_last else "│  ")
    for i, child in enumerate(span.children):
        _render_span(child, child_prefix, i == len(span.children) - 1, lines)


def render_explain(tracer: Tracer,
                   metrics: Optional[Dict[str, Any]] = None) -> str:
    """The annotated span tree plus counter/gauge/plan-cache tables.

    ``metrics`` defaults to :func:`metrics_dump` of the same tracer; the
    paper mapping of the phases (preprocessing vs enumeration delay,
    Section 2.3.3) is documented in DESIGN.md's observability note.
    """
    if metrics is None:
        metrics = metrics_dump(tracer)
    lines: List[str] = ["span tree (wall clock)"]
    if not tracer.roots:
        lines.append("  (no spans recorded — was tracing enabled?)")
    for i, root in enumerate(tracer.roots):
        _render_span(root, "", i == len(tracer.roots) - 1, lines)
    counters = metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters")
        width = max(len(k) for k in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges")
        width = max(len(k) for k in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]}")
    cache = metrics.get("plan_cache")
    if cache is not None:
        lines.append("")
        lines.append(
            f"plan cache: {cache['hits']} hits, {cache['misses']} misses, "
            f"{cache['evictions']} evictions "
            f"({cache['entries']} entries, maxsize {cache['maxsize']})")
    return "\n".join(lines)


# ------------------------------------------------------------------- metrics


def metrics_dump(tracer: Tracer) -> Dict[str, Any]:
    """Flat, JSON-serialisable metrics snapshot.

    Always includes the process-wide plan-cache statistics
    (:meth:`repro.core.plancache.PlanCache.stats`) and the calibrated
    clock overhead (:func:`repro.perf.delay.timer_overhead_ns`) as a
    gauge, so every dump records its own measurement floor — even when
    the tracer itself is the disabled singleton.
    """
    from repro.core.plancache import plan_cache
    from repro.obs.registry import registry
    from repro.perf.delay import timer_overhead_ns

    gauges = {k: _jsonable(v) for k, v in tracer.gauges.items()}
    gauges["timer_overhead_ns"] = timer_overhead_ns()
    return {
        "counters": {k: _jsonable(tracer.counters[k])
                     for k in sorted(tracer.counters)},
        "gauges": gauges,
        "plan_cache": plan_cache().stats(),
        # the always-on registry: whole-process counters and quantile
        # sketch digests, present even when the scoped tracer is off
        "registry": registry().snapshot(),
    }
