"""Schema lint for exported Chrome trace-event documents.

Trace viewers are forgiving; CI should not be.  A trace that renders in
Perfetto can still be subtly wrong — duration events out of order (the
bug this module was written against: adopted worker spans appended
after the driver's own broke monotonic ``ts``), unmatched ``B``/``E``
pairs from a span that never closed, or worker events missing the
request identity that makes the fan-out attributable.  The CI
observability job runs :func:`lint_chrome_trace` over every trace the
smoke steps export, so a regression in the exporter or the propagation
plumbing fails the build instead of a future debugging session.

The checks (each violation is one human-readable string):

* document shape — ``traceEvents`` list present, every event a dict
  with a ``ph``;
* ``X`` events — numeric ``ts``/``dur``, both non-negative, and ``ts``
  non-decreasing in list order (the order the exporter promises);
* ``B``/``E`` events — matched pairs per ``(pid, tid)`` stack, properly
  nested, nothing left open;
* trace identity — when ``otherData.trace_id`` is set, at least one
  event carries a matching ``args.trace_id``, and no event carries a
  *different* one (a foreign trace_id means contexts leaked between
  requests).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

#: phases the linter understands; anything else is reported
KNOWN_PHASES = {"X", "B", "E", "C", "M", "I", "i"}


def lint_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """All schema violations in ``doc`` (empty list = clean)."""
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts: float = float("-inf")
    open_stacks: Dict[Any, List[str]] = {}
    doc_trace_id = (doc.get("otherData") or {}).get("trace_id")
    saw_trace_id = False
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(
                    f"event {i} ({ev.get('name')!r}): bad ts {ts!r}")
                continue
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"event {i} ({ev.get('name')!r}): bad dur {dur!r}")
            if ts < last_ts:
                problems.append(
                    f"event {i} ({ev.get('name')!r}): ts {ts} before "
                    f"previous {last_ts} — X events must be emitted in "
                    f"start order")
            last_ts = max(last_ts, ts)
        elif ph in ("B", "E"):
            key = (ev.get("pid"), ev.get("tid"))
            stack = open_stacks.setdefault(key, [])
            if ph == "B":
                stack.append(ev.get("name", ""))
            elif not stack:
                problems.append(
                    f"event {i} ({ev.get('name')!r}): E without B on "
                    f"track {key}")
            else:
                opened = stack.pop()
                name = ev.get("name")
                if name is not None and name != opened:
                    problems.append(
                        f"event {i}: E {name!r} closes B {opened!r} on "
                        f"track {key}")
        arg_tid = (ev.get("args") or {}).get("trace_id")
        if arg_tid is not None:
            saw_trace_id = True
            if doc_trace_id is not None and arg_tid != doc_trace_id:
                problems.append(
                    f"event {i} ({ev.get('name')!r}): trace_id "
                    f"{arg_tid!r} != document trace_id {doc_trace_id!r}")
    for key, stack in open_stacks.items():
        if stack:
            problems.append(
                f"track {key}: {len(stack)} unclosed B event(s): {stack}")
    # an event-less trace (e.g. a watchdog-retained request that did
    # all its work outside span scopes) is not a leak — only flag when
    # events exist and none of them carries the document's identity
    if doc_trace_id is not None and events and not saw_trace_id:
        problems.append(
            f"document trace_id {doc_trace_id!r} appears on no event")
    return problems


def lint_chrome_trace_file(path: str) -> List[str]:
    """Load ``path`` and lint it; JSON errors are violations too."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable ({exc})"]
    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    return lint_chrome_trace(doc)


def main(argv: Any = None) -> int:
    """CLI entry (``python -m repro.obs.tracelint FILE...``): prints
    violations, exits non-zero when any file fails."""
    import sys
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.obs.tracelint TRACE.json [...]")
        return 2
    failed = False
    for path in paths:
        problems = lint_chrome_trace_file(path)
        if problems:
            failed = True
            for p in problems:
                print(f"{path}: {p}")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
