"""The complexity observatory: canonical benchmark records, history, and
the regression gate.

Before this module every ``BENCH_*.json`` at the repo root was a one-shot
snapshot in an ad-hoc shape: no provenance, no history, no machine-checked
link between a measured curve and the complexity class the planner
assigned.  The observatory fixes all three:

* **one schema** (:data:`SCHEMA`): a *record* is one benchmark case —
  a size sweep of one metric — with the full delay statistics
  (p50/p95/p99/p99.9, histogram), preprocessing times, throughput, and
  provenance (git sha, runner-supplied timestamp, python/numpy versions,
  machine fingerprint, engine, block size, timer overhead).  The
  recorder *rejects* payloads that do not validate, so ad-hoc dicts can
  no longer leak into the BENCH files;
* **history**: every run appends its records to
  ``benchmarks/history/<suite>.jsonl`` (one JSON object per line), so
  the benchmark trajectory of the repository is a first-class artifact
  that ``repro report`` can render and CI can archive;
* **verdicts**: each record carries the log-log slope fit with CI and
  the categorical verdict (:mod:`repro.obs.fitting`) next to the
  *expected* verdict derived from :mod:`repro.core.classify`, so a
  wrong-shape measurement is an observable, not a human squinting at
  numbers;
* **regression gate**: :meth:`Observatory.regressions` compares each
  case's latest headline measurement against a rolling baseline
  (median of the last N prior runs, with a noise band widened by the
  baseline's own dispersion) and flags regressions; ``repro bench`` /
  ``repro report`` surface the flags and can turn them into a nonzero
  exit code.
"""

from __future__ import annotations

import json
import math
import os
import statistics
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.fitting import (
    expected_verdict,
    fit_loglog,
    verdict_from_fit,
    verdict_matches,
)

#: schema identifier stamped on every record
SCHEMA = "repro-bench/1"

#: provenance keys every record must carry
PROVENANCE_KEYS = ("git_sha", "timestamp", "python", "numpy", "platform",
                   "machine", "hostname", "engine", "block_size",
                   "timer_overhead_ns")

#: default rolling-baseline depth and minimum relative noise band
BASELINE_N = 5
MIN_BAND = 0.30


class SchemaError(ValueError):
    """A benchmark payload does not conform to :data:`SCHEMA`."""


# ----------------------------------------------------------- provenance


def collect_provenance(timestamp: str,
                       engine: Optional[str] = None,
                       block_size: Optional[int] = None,
                       cwd: Optional[str] = None) -> Dict[str, Any]:
    """Assemble the provenance block for a run.

    ``timestamp`` is passed in by the runner (the CLI or the benchmark
    process) rather than sampled here, so one invocation stamps all its
    records identically and replayed/backfilled records can carry their
    original times.
    """
    import platform as _platform

    from repro.perf.delay import timer_overhead_ns

    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd or os.getcwd(), capture_output=True, text=True,
            timeout=5,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is baked into the image
        numpy_version = None
    if engine is None:
        from repro.engine import get_engine

        engine = get_engine().name
    if block_size is None:
        from repro.engine import resolve_block_size

        block_size = resolve_block_size(None)
    from repro.engine import default_workers

    # cpu_count/workers are additive (not in PROVENANCE_KEYS): pre-pool
    # records without them stay schema-valid, new records let the gate's
    # readers normalise parallel timings by the fan-out they ran at
    return {
        "git_sha": sha,
        "timestamp": timestamp,
        "python": _platform.python_version(),
        "numpy": numpy_version,
        "platform": f"{_platform.system()}-{_platform.machine()}",
        "machine": f"{os.cpu_count()}cpu-{sys.implementation.name}",
        "hostname": _platform.node() or "unknown",
        "engine": engine,
        "block_size": block_size,
        "timer_overhead_ns": timer_overhead_ns(),
        "cpu_count": os.cpu_count(),
        "workers": default_workers(),
    }


def backfill_provenance(timestamp: str) -> Dict[str, Any]:
    """Placeholder provenance for records migrated from the legacy
    pre-observatory BENCH files (which recorded none)."""
    prov = {key: "pre-observatory" for key in PROVENANCE_KEYS}
    prov.update(timestamp=timestamp, numpy=None, block_size=None,
                timer_overhead_ns=None, backfilled=True)
    return prov


# ---------------------------------------------------------- the record


def make_record(suite: str, case: str, metric: str,
                points: Sequence[Dict[str, Any]],
                expectation: Optional[str] = None,
                provenance: Optional[Dict[str, Any]] = None,
                timestamp: Optional[str] = None,
                fit: bool = True,
                **extra: Any) -> Dict[str, Any]:
    """Build (and validate) one canonical benchmark record.

    ``points`` is the size sweep: each point needs a numeric ``n`` (the
    instance size, typically ``||D||``) and ``value`` (the primary
    metric named by ``metric``); any further per-point statistics
    (delay percentiles, histogram, preprocessing, throughput) ride
    along.  The log-log fit and verdict are computed here so every
    stored record is self-interpreting.

    Pass ``fit=False`` when ``n`` is *not* an instance size (e.g. the
    parallel suite's worker counts): a log-log slope over such an axis
    is not a scaling law, so the record stores no fit and an
    ``inconclusive`` verdict instead of a number that invites
    misreading.
    """
    if provenance is None:
        if timestamp is None:
            raise SchemaError(
                "make_record needs either a provenance dict or the "
                "runner's timestamp to collect one")
        provenance = collect_provenance(timestamp)
    record: Dict[str, Any] = {
        "schema": SCHEMA,
        "suite": suite,
        "case": case,
        "metric": metric,
        "expectation": expectation,
        "points": [dict(p) for p in points],
        "provenance": provenance,
    }
    record.update(extra)
    sizes = [p["n"] for p in record["points"] if "n" in p]
    values = [p["value"] for p in record["points"] if "value" in p]
    if fit and len(sizes) >= 2 and len(sizes) == len(values):
        fitted = fit_loglog(sizes, values)
        record["fit"] = fitted.to_dict()
        record["verdict"] = verdict_from_fit(fitted)
    else:
        record["fit"] = None
        record["verdict"] = "inconclusive"
    record["verdict_ok"] = verdict_matches(record["verdict"], expectation)
    return validate_record(record)


def validate_record(record: Any) -> Dict[str, Any]:
    """Check a payload against the canonical schema; raises
    :class:`SchemaError` on ad-hoc dicts (the recorder refuses them)."""
    if not isinstance(record, dict):
        raise SchemaError(f"benchmark record must be a dict, "
                          f"got {type(record).__name__}")
    if record.get("schema") != SCHEMA:
        raise SchemaError(
            f"payload does not declare schema {SCHEMA!r} "
            f"(got {record.get('schema')!r}); build records with "
            f"make_record() / benchmarks/_util.py record_case()")
    for key in ("suite", "case", "metric"):
        if not isinstance(record.get(key), str) or not record[key]:
            raise SchemaError(f"record field {key!r} must be a "
                              f"non-empty string")
    points = record.get("points")
    if not isinstance(points, list) or not points:
        raise SchemaError("record needs a non-empty 'points' list")
    for point in points:
        if not isinstance(point, dict):
            raise SchemaError("each point must be a dict")
        for key in ("n", "value"):
            if not isinstance(point.get(key), (int, float)) \
                    or isinstance(point.get(key), bool):
                raise SchemaError(f"point field {key!r} must be numeric, "
                                  f"got {point.get(key)!r}")
    provenance = record.get("provenance")
    if not isinstance(provenance, dict):
        raise SchemaError("record needs a 'provenance' dict (git sha, "
                          "timestamp, machine fingerprint, ...)")
    missing = [key for key in PROVENANCE_KEYS if key not in provenance]
    if missing:
        raise SchemaError(f"provenance is missing {missing}")
    expectation = record.get("expectation")
    if expectation is not None and not isinstance(expectation, str):
        raise SchemaError("'expectation' must be a verdict name or None")
    return record


def headline(record: Dict[str, Any]) -> float:
    """The case's regression-tracked scalar: the metric value at the
    largest measured size (the point where a slowdown hurts most)."""
    point = max(record["points"], key=lambda p: p["n"])
    return float(point["value"])


# ------------------------------------------------------------- history


@dataclass
class Regression:
    """One case's standing against its rolling baseline."""

    suite: str
    case: str
    metric: str
    latest: float
    baseline: Optional[float]
    band: Optional[float]
    threshold: Optional[float]
    n_baseline: int
    flagged: bool

    @property
    def ratio(self) -> Optional[float]:
        if not self.baseline:
            return None
        return self.latest / self.baseline

    def describe(self) -> str:
        name = f"{self.suite}/{self.case}"
        if self.baseline is None:
            return f"{name}: no baseline yet ({self.n_baseline} prior runs)"
        verdictish = "REGRESSION" if self.flagged else "ok"
        return (f"{name}: {verdictish} — latest {self.latest:.3g} vs "
                f"baseline {self.baseline:.3g} "
                f"(x{self.ratio:.2f}, band +{self.band:.0%}, "
                f"n={self.n_baseline})")


class Observatory:
    """Append-only benchmark history over ``<history_dir>/<suite>.jsonl``."""

    def __init__(self, history_dir: str) -> None:
        self.history_dir = history_dir

    def path_for(self, suite: str) -> str:
        return os.path.join(self.history_dir, f"{suite}.jsonl")

    def append(self, record: Dict[str, Any]) -> str:
        """Validate and append one record; returns the history path."""
        validate_record(record)
        os.makedirs(self.history_dir, exist_ok=True)
        path = self.path_for(record["suite"])
        with open(path, "a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return path

    def suites(self) -> List[str]:
        if not os.path.isdir(self.history_dir):
            return []
        return sorted(name[:-6] for name in os.listdir(self.history_dir)
                      if name.endswith(".jsonl"))

    def load(self, suite: Optional[str] = None) -> List[Dict[str, Any]]:
        """All records, in append order (per suite file); lines that do
        not parse or validate are skipped, not fatal — a corrupt tail
        from a killed run must not take the observatory down."""
        suites = [suite] if suite is not None else self.suites()
        records: List[Dict[str, Any]] = []
        for name in suites:
            path = self.path_for(name)
            if not os.path.exists(path):
                continue
            with open(path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        records.append(validate_record(json.loads(line)))
                    except (ValueError, SchemaError):
                        continue
        return records

    def cases(self, suite: Optional[str] = None
              ) -> Dict[Tuple[str, str], List[Dict[str, Any]]]:
        """History grouped by (suite, case), run order preserved."""
        grouped: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
        for record in self.load(suite):
            grouped.setdefault((record["suite"], record["case"]),
                               []).append(record)
        return grouped

    # ------------------------------------------------- regression gate

    def regressions(self, suite: Optional[str] = None,
                    baseline_n: int = BASELINE_N,
                    min_band: float = MIN_BAND) -> List[Regression]:
        """Latest run vs rolling baseline, per case.

        Baseline: median of the up-to-``baseline_n`` runs preceding the
        latest.  Noise band: ``max(min_band, 3 * MAD/median)`` — the
        baseline's own dispersion widens the band, so a machine that
        jitters 40% between runs does not page anyone at +35%, while a
        stable series is still gated at ``min_band``.
        """
        out: List[Regression] = []
        for (suite_name, case), runs in sorted(self.cases(suite).items()):
            latest = headline(runs[-1])
            # only baseline against runs measuring the same metric — a
            # case that switched metric (e.g. after a recorder change)
            # starts a fresh series instead of comparing apples to
            # oranges
            metric = runs[-1]["metric"]
            prior = [headline(r) for r in runs[:-1]
                     if r["metric"] == metric][-baseline_n:]
            if not prior:
                out.append(Regression(suite_name, case,
                                      runs[-1]["metric"], latest,
                                      None, None, None, 0, False))
                continue
            baseline = statistics.median(prior)
            mad = statistics.median(abs(v - baseline) for v in prior)
            band = min_band
            if baseline > 0:
                band = max(min_band, 3.0 * mad / baseline)
            threshold = baseline * (1.0 + band)
            out.append(Regression(
                suite_name, case, runs[-1]["metric"], latest, baseline,
                band, threshold, len(prior), bool(latest > threshold)))
        return out


# ------------------------------------------------- snapshot BENCH files


def write_snapshot(path: str, records: Sequence[Dict[str, Any]]) -> str:
    """Write a suite snapshot file (the ``BENCH_<suite>.json`` shape):
    the latest record per case, under the canonical schema."""
    doc = {
        "schema": SCHEMA,
        "records": [validate_record(r) for r in records],
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_snapshot(path: str) -> List[Dict[str, Any]]:
    """Records of a snapshot file ([] when absent or pre-schema)."""
    if not os.path.exists(path):
        return []
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except ValueError:
        return []
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        return []
    out = []
    for record in doc.get("records", []):
        try:
            out.append(validate_record(record))
        except SchemaError:
            continue
    return out


def merge_snapshot(path: str, record: Dict[str, Any]) -> str:
    """Replace the (suite, case) row of a snapshot with ``record``."""
    validate_record(record)
    records = [r for r in load_snapshot(path)
               if (r["suite"], r["case"]) != (record["suite"],
                                              record["case"])]
    records.append(record)
    records.sort(key=lambda r: (r["suite"], r["case"]))
    return write_snapshot(path, records)


# -------------------------------------------------- legacy migration


def migrate_legacy_doc(doc: Any, suite: str,
                       timestamp: str) -> List[Dict[str, Any]]:
    """Convert a pre-observatory ``BENCH_*.json`` document into canonical
    records (used once to backfill history; kept so old artifacts remain
    readable).  Three legacy shapes existed:

    * ``BENCH_core.json`` — flat rows ``{op, n, backend, seconds}``;
    * ``BENCH_enum.json`` / ``BENCH_obs.json`` — flat rows
      ``{experiment, mode, n, **fields}``;
    * the already-migrated snapshot shape, returned as-is.
    """
    if isinstance(doc, dict) and doc.get("schema") == SCHEMA:
        return [validate_record(r) for r in doc.get("records", [])]
    if not isinstance(doc, list):
        raise SchemaError(f"unrecognised legacy document for {suite!r}")
    provenance = backfill_provenance(timestamp)
    series: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for row in doc:
        if not isinstance(row, dict):
            raise SchemaError("legacy rows must be dicts")
        if {"op", "n", "backend", "seconds"} <= set(row):
            key = (f"{row['op']}/{row['backend']}", "total_seconds")
            point = {"n": row["n"], "value": row["seconds"]}
        elif {"experiment", "mode", "n"} <= set(row):
            fields = {k: v for k, v in row.items()
                      if k not in ("experiment", "mode", "n")}
            case = f"{row['experiment']}/{row['mode']}"
            metric, value = _legacy_primary_metric(fields)
            if metric is None:
                continue
            key = (case, metric)
            point = {"n": row["n"], "value": value, **fields}
        else:
            raise SchemaError(f"unrecognised legacy row {sorted(row)}")
        series.setdefault(key, []).append(point)
    records = []
    for (case, metric), points in sorted(series.items()):
        points.sort(key=lambda p: p["n"])
        records.append(make_record(
            suite, case, metric, points, provenance=provenance))
    return records


def _legacy_primary_metric(fields: Dict[str, Any]
                           ) -> Tuple[Optional[str], Optional[float]]:
    """Pick the primary metric of a legacy enum/obs row (first match
    wins); rows with no measurement (e.g. stored slopes, which the
    observatory recomputes from the points) are dropped."""
    # Ordered to land each legacy row on the metric today's recorders
    # use for the same case, so backfilled history continues the live
    # series: throughput rows also carry delay fields, and flat-delay
    # rows carry both mean and median.
    preferences = (
        ("throughput_per_s", "throughput_per_s", 1.0),
        ("preprocessing_ms", "preprocessing_seconds", 1e-3),
        ("mean_delay_us", "delay_mean_seconds", 1e-6),
        ("median_delay_us", "delay_p50_seconds", 1e-6),
        ("overhead_fraction", "overhead_fraction", 1.0),
        ("wall_seconds", "wall_seconds", 1.0),
        ("ratio", "ratio", 1.0),
    )
    for legacy_key, metric, scale in preferences:
        if legacy_key in fields:
            return metric, fields[legacy_key] * scale
    return None, None


def migrate_legacy_file(path: str, suite: str,
                        timestamp: Optional[str] = None
                        ) -> List[Dict[str, Any]]:
    """Read one legacy BENCH file and return canonical records."""
    import datetime

    if timestamp is None:
        mtime = os.path.getmtime(path)
        timestamp = datetime.datetime.fromtimestamp(
            mtime, datetime.timezone.utc).isoformat(timespec="seconds")
    with open(path) as fh:
        return migrate_legacy_doc(json.load(fh), suite, timestamp)


# ------------------------------------------------------- bench suites


#: the CLI's built-in suite: (case, metric, metric kind, query text)
BENCH_SUITE = "bench"


def run_bench_suites(sizes: Sequence[int],
                     triangle_sizes: Sequence[int],
                     timestamp: str,
                     max_outputs: int = 600,
                     repeats: int = 2,
                     seed: int = 7) -> List[Dict[str, Any]]:
    """Run the built-in complexity suites and return canonical records.

    Four cases spanning the paper's shape claims, sized by the caller
    (``repro bench --quick`` uses a ~1.2-decade sweep):

    * ``free_connex/delay`` — Theorem 4.6: p50 per-answer delay of the
      free-connex enumerator must stay flat in ``||D||``;
    * ``free_connex/preprocessing`` — the same runs' phase-one cost must
      grow linearly;
    * ``full_acyclic/total`` — Theorem 4.2: full Yannakakis evaluation
      of the quantifier-free join, linear total time;
    * ``acq_linear/delay`` — Theorem 4.3: Algorithm 2's mean delay grows
      with the data;
    * ``lower_bound_triangle/total`` — Theorem 4.9's shape: naive
      triangle detection is superlinear in ``||D||`` where acyclic
      evaluation is linear.

    Expectations are derived from the classifier, not hard-coded, so the
    comparison exercises the same path a user query takes.
    """
    import time

    from repro.core.plancache import clear_plan_cache
    from repro.data import generators
    from repro.enumeration.acq_linear import LinearDelayACQEnumerator
    from repro.enumeration.free_connex import FreeConnexEnumerator
    from repro.eval.naive import cq_is_satisfiable_naive
    from repro.eval.yannakakis import yannakakis
    from repro.logic.parser import parse_cq
    from repro.perf.delay import measure_enumerator

    provenance = collect_provenance(timestamp)
    fc_query = parse_cq("Q(x) :- R(x, z), S(z, y)")
    full_query = parse_cq("Q(x, z, y) :- R(x, z), S(z, y)")
    lin_query = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    tri_query = parse_cq("Q() :- E(x, y), E(y, z), E(z, x)")

    def bin_db(n: int):
        return generators.random_database(
            {"R": 2, "S": 2}, max(4, n // 4), n, seed=seed)

    fc_points, pre_points, lin_points, full_points = [], [], [], []
    for n in sizes:
        db = bin_db(n)
        size = db.size()
        best = None
        for _ in range(max(1, repeats)):
            clear_plan_cache()
            profile = measure_enumerator(
                FreeConnexEnumerator(fc_query, db), max_outputs=max_outputs)
            if best is None or profile.percentile(0.5) \
                    < best.percentile(0.5):
                best = profile
        summary = best.summary()
        fc_points.append({"n": size,
                          "value": summary["delay_p50_seconds"], **summary})
        pre_points.append({"n": size,
                           "value": summary["preprocessing_seconds"]})

        clear_plan_cache()
        lin_profile = measure_enumerator(
            LinearDelayACQEnumerator(lin_query, db),
            max_outputs=max_outputs)
        lin_summary = lin_profile.summary()
        lin_points.append({"n": size,
                           "value": lin_summary["delay_mean_seconds"],
                           **lin_summary})

        total = math.inf
        for _ in range(max(1, repeats)):
            clear_plan_cache()
            start = time.perf_counter()
            out = yannakakis(full_query, db)
            total = min(total, time.perf_counter() - start)
        full_points.append({"n": size, "value": total,
                            "outputs": len(out)})

    tri_points = []
    for n in triangle_sizes:
        db = generators.graph_database(
            [(("a", i), ("b", j)) for i in range(n) for j in range(n)
             if (i + j) % 3], symmetric=True)
        size = db.size()
        total = math.inf
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            cq_is_satisfiable_naive(tri_query, db)
            total = min(total, time.perf_counter() - start)
        tri_points.append({"n": size, "value": total, "vertices": 2 * n})

    return [
        make_record(BENCH_SUITE, "free_connex/delay", "delay_p50_seconds",
                    fc_points, expectation=expected_verdict(fc_query,
                                                            "delay"),
                    provenance=provenance),
        make_record(BENCH_SUITE, "free_connex/preprocessing",
                    "preprocessing_seconds", pre_points,
                    expectation=expected_verdict(fc_query,
                                                 "preprocessing"),
                    provenance=provenance),
        make_record(BENCH_SUITE, "full_acyclic/total", "total_seconds",
                    full_points, expectation=expected_verdict(full_query,
                                                              "total"),
                    provenance=provenance),
        make_record(BENCH_SUITE, "acq_linear/delay", "delay_mean_seconds",
                    lin_points, expectation=expected_verdict(lin_query,
                                                             "delay"),
                    provenance=provenance),
        make_record(BENCH_SUITE, "lower_bound_triangle/total",
                    "total_seconds", tri_points,
                    expectation=expected_verdict(tri_query, "total"),
                    provenance=provenance),
    ]


#: the worker-pool suite: speedup-vs-workers on one fixed instance
PARALLEL_SUITE = "parallel"


def run_parallel_suite(timestamp: str, size: int = 60_000,
                       workers_list: Optional[Sequence[int]] = None,
                       repeats: int = 2,
                       seed: int = 7) -> List[Dict[str, Any]]:
    """Measure the parallel backend's speedup-vs-workers curve.

    One fixed two-atom join instance; the serial ``columnar`` backend
    sets the baseline, then counting and enumeration wall times are
    measured per worker count (pool dispatch forced by a zero
    threshold).  Points use ``n`` = workers and ``value`` = wall seconds
    (the gate's higher-is-worse convention; the headline is the
    max-worker wall time), with the speedup-over-serial curve riding
    along as a per-point ``speedup_x`` and its best value as a
    record-level ``best_speedup_x`` so the suite is gated on speedup,
    not on a pseudo-scaling-law.  The records carry **no slope fit**
    (``fit=False``): ``n`` is a worker count, not an instance size, and
    the old fitted "slopes" over 2-4 worker points were exactly the
    unreliable sub-3-point interpolations :data:`~repro.obs.fitting`
    now flags.  No expectation is attached either: on shared 1-2 cpu
    runners the curve is flat or worse, and a verdict there would only
    produce noise (warn-only by design).
    """
    import time

    from repro.core.plancache import clear_plan_cache
    from repro.core.planner import count
    from repro.data import generators
    from repro.engine.parallel import ParallelEngine
    from repro.enumeration.free_connex import FreeConnexEnumerator
    from repro.logic.parser import parse_cq

    provenance = collect_provenance(timestamp, engine="parallel")
    cpus = os.cpu_count() or 1
    if workers_list is None:
        workers_list = sorted({1, 2, min(4, max(2, cpus)), cpus})
    query = parse_cq("Q(x, z, y) :- R(x, z), S(z, y)")
    db = generators.random_database({"R": 2, "S": 2}, max(4, size // 4),
                                    size, seed=seed)

    def timed(fn) -> float:
        best = math.inf
        for _ in range(max(1, repeats)):
            clear_plan_cache()
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def run_count(engine) -> None:
        count(query, db, engine=engine)

    def run_enum(engine) -> None:
        for _ in FreeConnexEnumerator(query, db, engine=engine):
            pass

    count_base = timed(lambda: run_count("columnar"))
    enum_base = timed(lambda: run_enum("columnar"))
    count_points, enum_points = [], []
    for w in workers_list:
        eng = ParallelEngine(workers=w, threshold=0)
        count_wall = timed(lambda: run_count(eng))
        enum_wall = timed(lambda: run_enum(eng))
        count_points.append({"n": w, "value": count_wall,
                             "speedup_x": count_base / count_wall,
                             "serial_seconds": count_base})
        enum_points.append({"n": w, "value": enum_wall,
                            "speedup_x": enum_base / enum_wall,
                            "serial_seconds": enum_base})
    return [
        make_record(PARALLEL_SUITE, "parallel/count_wall", "wall_seconds",
                    count_points, provenance=provenance, instance_size=size,
                    cpu_count=cpus, fit=False,
                    best_speedup_x=max(p["speedup_x"]
                                       for p in count_points)),
        make_record(PARALLEL_SUITE, "parallel/enum_wall", "wall_seconds",
                    enum_points, provenance=provenance, instance_size=size,
                    cpu_count=cpus, fit=False,
                    best_speedup_x=max(p["speedup_x"]
                                       for p in enum_points)),
    ]


#: the compiled-tier suite: size sweep vs the columnar baseline
COMPILED_SUITE = "compiled"


def run_compiled_suite(timestamp: str,
                       sizes: Optional[Sequence[int]] = None,
                       repeats: int = 2,
                       max_outputs: int = 600,
                       seed: int = 7) -> List[Dict[str, Any]]:
    """Measure the compiled tier against the columnar baseline.

    Unlike the parallel suite this *is* a size sweep, so the scaling-law
    machinery applies in full: the compiled kernels must keep the
    paper's shapes (linear counting totals, flat free-connex delay)
    while moving only the constant factors.  Three cases:

    * ``compiled/count_wall`` — acyclic counting wall time over
      ``sizes``, expectation ``linear`` (Theorem 4.2 shapes survive the
      kernel swap), per-point ``speedup_x`` vs ``columnar`` on the same
      instance;
    * ``compiled/reduce_enum_wall`` — full reduction + free-connex
      enumeration wall time, expectation ``linear``, same speedup
      convention;
    * ``compiled/delay`` — free-connex p50 per-answer delay on the
      compiled backend, expectation ``constant-delay`` (Theorem 4.6).

    The ≥2x-vs-columnar acceptance line is CI's to judge (warn-only:
    the numpy fallback tier on a shared runner will not hit it); the
    records carry the measured ``speedup_x`` so the judgement is a
    ``jq`` expression, not a re-run.
    """
    import time

    from repro.core.plancache import clear_plan_cache
    from repro.core.planner import count
    from repro.data import generators
    from repro.engine.radix import kernel_tier
    from repro.enumeration.free_connex import FreeConnexEnumerator
    from repro.logic.parser import parse_cq
    from repro.perf.delay import measure_enumerator

    provenance = collect_provenance(timestamp, engine="compiled")
    if sizes is None:
        sizes = (8_000, 25_000, 80_000)
    count_query = parse_cq("Q(x, z, y) :- R(x, z), S(z, y)")
    fc_query = parse_cq("Q(x) :- R(x, z), S(z, y)")

    def timed(fn) -> float:
        best = math.inf
        for _ in range(max(1, repeats)):
            clear_plan_cache()
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    count_points, enum_points, delay_points = [], [], []
    for size in sizes:
        db = generators.random_database(
            {"R": 2, "S": 2}, max(4, size // 4), size, seed=seed)
        n = db.size()

        def run_count(engine) -> None:
            count(count_query, db, engine=engine)

        def run_enum(engine) -> None:
            for _ in FreeConnexEnumerator(fc_query, db, engine=engine):
                pass

        count_base = timed(lambda: run_count("columnar"))
        count_wall = timed(lambda: run_count("compiled"))
        enum_base = timed(lambda: run_enum("columnar"))
        enum_wall = timed(lambda: run_enum("compiled"))
        count_points.append({"n": n, "value": count_wall,
                             "speedup_x": count_base / count_wall,
                             "serial_seconds": count_base})
        enum_points.append({"n": n, "value": enum_wall,
                            "speedup_x": enum_base / enum_wall,
                            "serial_seconds": enum_base})
        clear_plan_cache()
        profile = measure_enumerator(
            FreeConnexEnumerator(fc_query, db, engine="compiled"),
            max_outputs=max_outputs)
        summary = profile.summary()
        delay_points.append({"n": n, "value": summary["delay_p50_seconds"],
                             **summary})

    tier = kernel_tier()
    return [
        make_record(COMPILED_SUITE, "compiled/count_wall", "wall_seconds",
                    count_points, provenance=provenance,
                    expectation=expected_verdict(count_query, "total"),
                    kernel_tier=tier,
                    best_speedup_x=max(p["speedup_x"]
                                       for p in count_points)),
        make_record(COMPILED_SUITE, "compiled/reduce_enum_wall",
                    "wall_seconds", enum_points, provenance=provenance,
                    expectation=expected_verdict(fc_query, "total"),
                    kernel_tier=tier,
                    best_speedup_x=max(p["speedup_x"]
                                       for p in enum_points)),
        make_record(COMPILED_SUITE, "compiled/delay", "delay_p50_seconds",
                    delay_points, provenance=provenance,
                    expectation=expected_verdict(fc_query, "delay"),
                    kernel_tier=tier),
    ]


#: the incremental-maintenance suite: warm delta refresh vs cold rebuild
DYNAMIC_SUITE = "dynamic"


def run_dynamic_suite(timestamp: str, size: int = 100_000,
                      delta_fractions: Optional[Sequence[float]] = None,
                      repeats: int = 2, seed: int = 7,
                      engine: str = "columnar") -> List[Dict[str, Any]]:
    """Measure delta-propagated plan refresh against cold re-preprocessing.

    One fixed two-atom acyclic join at ``size`` tuples per relation; per
    delta fraction ``f``, an *update+query cycle* applies
    ``max(1, size*f)`` random inserts/deletes to the base relations and
    then re-runs the query.  Warm cycles run with ``REPRO_INCREMENTAL``
    semantics on (the cached plan is caught up through the per-relation
    delta logs); cold cycles disable the plan cache so every
    preprocessing artefact — dictionary encoding, semijoin reduction,
    counting DP — is rebuilt from ``||D||``.  Two cases:

    * ``dynamic/count_refresh`` — Theorem 4.21 counting cycle wall time;
    * ``dynamic/reduce_refresh`` — full-reducer cycle wall time.

    Points use ``n`` = delta ops and ``value`` = warm wall seconds, with
    the cold wall riding along as ``cold_seconds`` and the ratio as
    ``speedup_x`` (headline ``best_speedup_x``).  ``fit=False``: the
    axis is a delta size, not an instance size, so a log-log slope over
    it is not a scaling law.  No expectation is attached — the largest
    fraction deliberately overflows the default delta-log capacity and
    degrades to a ~1x cold fallback, which is the documented boundary,
    not a regression (warn-only by design).
    """
    import random
    import time

    from repro.core.planner import count
    from repro.core.plancache import (clear_plan_cache, incremental_scope,
                                      plan_cache_disabled)
    from repro.data import generators
    from repro.eval.yannakakis import full_reducer
    from repro.logic.parser import parse_cq

    provenance = collect_provenance(timestamp, engine=engine)
    if delta_fractions is None:
        delta_fractions = (0.001, 0.01, 0.1)
    query = parse_cq("Q(x, z, y) :- R(x, z), S(z, y)")
    db = generators.random_database({"R": 2, "S": 2}, max(4, size // 4),
                                    size, seed=seed)
    rng = random.Random(seed)
    names = ["R", "S"]
    domain = max(4, size // 4)

    def apply_batch(k: int) -> None:
        for _ in range(k):
            rel = db.relation(rng.choice(names))
            tup = (rng.randrange(domain), rng.randrange(domain))
            if rng.random() < 0.5:
                rel.add(tup)
            else:
                rel.discard(tup)

    def timed_cycles(k: int, fn) -> float:
        best = math.inf
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            apply_batch(k)
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    count_points, reduce_points = [], []
    for fraction in delta_fractions:
        k = max(1, int(size * fraction))
        with incremental_scope(True):
            clear_plan_cache()
            count(query, db, engine=engine)        # prime the warm state
            full_reducer(query, db, engine=engine)
            count_warm = timed_cycles(k, lambda: count(query, db,
                                                       engine=engine))
            reduce_warm = timed_cycles(k, lambda: full_reducer(
                query, db, engine=engine))
        with incremental_scope(False), plan_cache_disabled():
            count_cold = timed_cycles(k, lambda: count(query, db,
                                                       engine=engine))
            reduce_cold = timed_cycles(k, lambda: full_reducer(
                query, db, engine=engine))
        count_points.append({"n": k, "value": count_warm,
                             "delta_fraction": fraction,
                             "speedup_x": count_cold / count_warm,
                             "cold_seconds": count_cold})
        reduce_points.append({"n": k, "value": reduce_warm,
                              "delta_fraction": fraction,
                              "speedup_x": reduce_cold / reduce_warm,
                              "cold_seconds": reduce_cold})
    return [
        make_record(DYNAMIC_SUITE, "dynamic/count_refresh", "wall_seconds",
                    count_points, provenance=provenance, instance_size=size,
                    fit=False,
                    best_speedup_x=max(p["speedup_x"]
                                       for p in count_points)),
        make_record(DYNAMIC_SUITE, "dynamic/reduce_refresh", "wall_seconds",
                    reduce_points, provenance=provenance, instance_size=size,
                    fit=False,
                    best_speedup_x=max(p["speedup_x"]
                                       for p in reduce_points)),
    ]

#: the self-join suite: shared per-symbol work vs the per-atom baseline
SELFJOIN_SUITE = "selfjoin"


def run_selfjoin_suite(timestamp: str,
                       sizes: Optional[Sequence[int]] = None,
                       repeats: int = 2, seed: int = 7,
                       engine: str = "columnar") -> List[Dict[str, Any]]:
    """Measure engine-wide per-symbol work sharing on self-join queries.

    Every case runs two arms on identical instances: **shared** (the
    default — one dictionary encode, one probe build, one materialised
    column set per (symbol, db version), semijoin passes coalesced) and
    **per-atom** (:func:`repro.engine.symbols.sharing_scope` forced off,
    which also bypasses the relation-level encode cache — each atom
    occurrence pays its own build, the historical behaviour).  Points
    use ``n`` = ||D|| and ``value`` = shared-arm wall seconds with the
    per-atom arm riding along as ``disabled_seconds`` and the ratio as
    ``speedup_x``; the headline ``best_speedup_x`` is what CI gates on
    (warn-only).  Cases:

    * ``selfjoin/path_count_wall`` — counting the 3-atom same-symbol
      path join Q(x,y,z,w) :- R(x,y), R(y,z), R(z,w) (free-connex since
      quantifier-free), expectation ``linear``;
    * ``selfjoin/path_enum_wall`` — full enumeration of the same path
      join (two of its three probe structures coincide per position);
    * ``selfjoin/star_reduce_wall`` — the full reducer on the star
      Q(x,y1,y2,y3) :- R(x,y1), R(x,y2), R(x,y3), where the bottom-up
      passes against same-column children coalesce;
    * ``selfjoin/triangle_materialise_wall`` — materialisation + one
      probe build per atom of the cyclic triangle R(x,y), R(y,z),
      R(z,x) (evaluation is superlinear by Theorem 4.9, so only the
      linear preprocessing is swept).

    Each point also carries the workspace counters from one freshly
    instantiated engine (``symbol_cache_misses`` must be 1 and
    ``symbol_cache_hits`` k-1 for a k-atom self-join — the "one build
    per symbol per version" provenance the acceptance bar asks for).
    """
    import time

    from repro import obs
    from repro.core.plancache import clear_plan_cache
    from repro.core.planner import count
    from repro.data import generators
    from repro.engine.base import ColumnarEngine
    from repro.engine.symbols import sharing_scope
    from repro.enumeration.free_connex import FreeConnexEnumerator
    from repro.eval.yannakakis import full_reducer, materialise_atoms
    from repro.logic.parser import parse_cq

    provenance = collect_provenance(timestamp, engine=engine)
    if sizes is None:
        sizes = (10_000, 100_000, 300_000)
    path_query = parse_cq("Q(x, y, z, w) :- R(x, y), R(y, z), R(z, w)")
    star_query = parse_cq(
        "Q(x, y1, y2, y3) :- R(x, y1), R(x, y2), R(x, y3)")
    tri_query = parse_cq("Q() :- R(x, y), R(y, z), R(z, x)")

    def timed(fn) -> float:
        best = math.inf
        for _ in range(max(1, repeats)):
            clear_plan_cache()
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def materialise_and_probe(query, eng) -> None:
        for rel, atom in zip(materialise_atoms(query, db, engine=eng),
                             query.atoms):
            rel.batch_probe((atom.variables()[0],))

    cases = {
        "path_count": lambda eng: count(path_query, db, engine=eng),
        "path_enum": lambda eng: sum(
            1 for _ in FreeConnexEnumerator(path_query, db, engine=eng)),
        "star_reduce": lambda eng: full_reducer(star_query, db, engine=eng),
        "triangle_materialise":
            lambda eng: materialise_and_probe(tri_query, eng),
    }
    points: Dict[str, List[Dict[str, Any]]] = {k: [] for k in cases}
    for size in sizes:
        # domain ~ size keeps the expected out-degree at 1, so the path
        # join's output stays O(||D||) and enumeration wall time
        # measures the join, not an exploding output
        db = generators.random_database({"R": 2}, size, size, seed=seed)
        n = db.size()
        # sharing provenance on a cold engine: k same-symbol atoms must
        # produce exactly 1 workspace miss (the build) and k-1 hits
        with obs.capture() as tracer:
            materialise_atoms(path_query, db, engine=ColumnarEngine())
        hits = tracer.counters.get("engine.symbol_workspace_hits", 0)
        misses = tracer.counters.get("engine.symbol_workspace_misses", 0)
        for name, fn in cases.items():
            shared = timed(lambda: fn(engine))
            with sharing_scope(False):
                disabled = timed(lambda: fn(engine))
            points[name].append({
                "n": n, "value": shared,
                "disabled_seconds": disabled,
                "speedup_x": disabled / shared,
                "symbol_cache_hits": hits,
                "symbol_cache_misses": misses,
            })

    def record(name: str, case: str, query=None,
               fit: bool = True) -> Dict[str, Any]:
        pts = points[name]
        return make_record(
            SELFJOIN_SUITE, case, "wall_seconds", pts,
            provenance=provenance, fit=fit,
            expectation=(expected_verdict(query, "total")
                         if query is not None else None),
            best_speedup_x=max(p["speedup_x"] for p in pts))

    return [
        record("path_count", "selfjoin/path_count_wall", path_query),
        record("path_enum", "selfjoin/path_enum_wall", path_query),
        record("star_reduce", "selfjoin/star_reduce_wall", star_query),
        record("triangle_materialise",
               "selfjoin/triangle_materialise_wall"),
    ]
