"""Runtime delay-guarantee watchdog.

PR 4's observatory checks the paper's complexity shapes *offline*: run
a sweep, fit a slope, compare the verdict with what
``core/classify.py`` promised.  The watchdog moves the same contract
online.  For every plan it takes the classifier-derived expectation
(``constant-delay`` for free-connex ACQs per Theorem 4.6, ``linear``
for acyclic per Theorem 4.3), watches the live per-answer delay sketch
against answers emitted, and fires a ``guarantee.violation`` event —
with the offending plan label — when the p99 delay drifts away from
the budget a constant-delay plan is allowed.

Mechanics: the first ``baseline_samples`` (weighted) observations of a
plan build its baseline sketch; the budget is ``factor`` x the
baseline p99 (floored at ``min_budget_ns`` to absorb clock/scheduler
noise).  Later observations fill a rolling window sketch; every
``window_samples`` answers the window p99 is compared against the
budget and the window restarts.  A constant-delay plan's p99 must not
move when the instance grows, so a sustained window p99 above
``factor`` x baseline means the plan left its guarantee — a
superlinear drift crosses any fixed factor eventually, while honest
constant-delay jitter does not.  ``linear`` expectations stay silent:
their delay is *allowed* to scale with ``||D||``, and the watchdog has
no online view of ``||D||`` to normalise against.

Tail-based trace retention rides on the same breach signal: wrap a
request in :meth:`GuaranteeWatchdog.tail_capture` and the full span
trace is kept (in a small ring) only when that request breached its
budget — deep traces are free in the common case.

Attribution: block enumerators report delay through
``obs.delay(gap_ns, answers)`` with no plan in hand.  The planner
pushes a ``(label, expectation)`` context around *each resumption* of
the answer generator (not one ``with`` around its whole suspended
lifetime — nested enumerations on the same thread would otherwise
steal each other's observations), and the watchdog's registry delay
listener reads the innermost context.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

import collections

from .registry import registry
from .sketch import QuantileSketch
from .trace import current_trace_id

#: default knobs — constructor arguments for tests that need tiny windows
BASELINE_SAMPLES = 512
WINDOW_SAMPLES = 4096
BUDGET_FACTOR = 8.0
#: noise floor: per-answer delays below this never count as violations.
#: Python scheduler/GIL jitter alone reaches tens of microseconds, so a
#: budget derived from a microsecond-scale baseline would trip on noise;
#: genuine superlinear drift crosses 100us within a few thousand answers.
MIN_BUDGET_NS = 100_000
MAX_PLANS = 64
TAIL_RING = 8


class _PlanState:
    __slots__ = ("label", "expectation", "baseline", "window", "budget_ns",
                 "violations", "answers", "checks", "last_trace_id")

    def __init__(self, label: str, expectation: Optional[str]) -> None:
        self.label = label
        self.expectation = expectation
        self.baseline = QuantileSketch()
        self.window = QuantileSketch()
        self.budget_ns: Optional[float] = None
        self.violations = 0
        self.answers = 0
        self.checks = 0
        self.last_trace_id: Optional[str] = None


class GuaranteeWatchdog:
    """Per-plan delay-budget monitor over the live registry stream."""

    def __init__(self, factor: float = BUDGET_FACTOR,
                 baseline_samples: int = BASELINE_SAMPLES,
                 window_samples: int = WINDOW_SAMPLES,
                 min_budget_ns: int = MIN_BUDGET_NS,
                 max_plans: int = MAX_PLANS,
                 tail_ring: int = TAIL_RING,
                 tail_dir: Optional[str] = None) -> None:
        self.factor = factor
        self.baseline_samples = baseline_samples
        self.window_samples = window_samples
        self.min_budget_ns = min_budget_ns
        self.max_plans = max_plans
        self.plans: Dict[str, _PlanState] = {}
        self.tail: Deque[Dict[str, Any]] = collections.deque(maxlen=tail_ring)
        self.tail_tracing = False
        #: when set, breaching requests' traces are also written to
        #: ``<tail_dir>/trace-<trace_id>.json`` so a violation event's
        #: trace_id (or a sketch exemplar) resolves to a file on disk
        self.tail_dir = tail_dir
        self._lock = threading.Lock()
        self._local = threading.local()
        self._expectations: Dict[Any, Optional[str]] = {}
        self._installed = False

    # --------------------------------------------------------- expectations

    def expectation_for(self, query: Any) -> Optional[str]:
        """The classifier's delay expectation for ``query`` (cached);
        ``None`` when the theory makes no shape claim."""
        try:
            cached = self._expectations.get(query, _MISS)
        except TypeError:  # unhashable query object
            cached = _MISS
        if cached is not _MISS:
            return cached
        try:
            from .fitting import expected_verdict
            verdict = expected_verdict(query, "delay")
        except Exception:
            verdict = None
        try:
            if len(self._expectations) < 4096:
                self._expectations[query] = verdict
        except TypeError:
            pass
        return verdict

    # ------------------------------------------------------------- observing

    def observe(self, label: str, gap_ns: int, answers: int = 1,
                expectation: Optional[str] = None) -> None:
        """Record a delay observation for a plan: a gap of ``gap_ns``
        covering ``answers`` answers (amortised, weight = answers)."""
        if answers <= 0:
            return
        per_answer = gap_ns // answers
        trace_id = current_trace_id()
        with self._lock:
            state = self.plans.get(label)
            if state is None:
                if len(self.plans) >= self.max_plans:
                    label = "_other"
                    state = self.plans.get(label)
                if state is None:
                    state = self.plans[label] = _PlanState(label, expectation)
            if state.expectation is None and expectation is not None:
                state.expectation = expectation
            state.answers += answers
            if trace_id is not None:
                state.last_trace_id = trace_id
            if state.budget_ns is None:
                state.baseline.add(per_answer, answers, trace_id=trace_id)
                if state.baseline.count >= self.baseline_samples:
                    state.budget_ns = max(
                        float(self.min_budget_ns),
                        self.factor * state.baseline.quantile(0.99))
            else:
                state.window.add(per_answer, answers, trace_id=trace_id)
                if state.window.count >= self.window_samples:
                    self._check_locked(state)
            label = state.label
        # per-plan sketch in the registry so the exposition carries
        # per-plan delay quantiles, not just the global stream — with
        # the trace_id as the tail-bucket exemplar when sampled
        registry().observe("delay.plan." + label, per_answer, answers,
                           trace_id=trace_id)

    def flush(self, label: Optional[str] = None) -> None:
        """Force-check any partially-filled windows (stream end, tests)."""
        with self._lock:
            states = ([self.plans[label]] if label is not None
                      and label in self.plans else list(self.plans.values()))
            for state in states:
                if state.window.count:
                    self._check_locked(state)

    def _check_locked(self, state: _PlanState) -> None:
        state.checks += 1
        registry().count("watchdog.checks")
        p99 = state.window.quantile(0.99)
        window_count = state.window.count
        # the window's p99-bucket exemplar names the request that put
        # the tail where it is — more precise than "whatever ran last"
        exemplar = state.window.exemplar(0.99)
        state.window = QuantileSketch()
        if state.expectation != "constant-delay" or state.budget_ns is None:
            return
        if p99 <= state.budget_ns:
            return
        state.violations += 1
        registry().count("watchdog.violations")
        trace_id = (exemplar[1] if exemplar is not None
                    else state.last_trace_id)
        from .expose import emit_event
        emit_event(
            "guarantee.violation",
            plan=state.label,
            expected=state.expectation,
            p99_ns=p99,
            budget_ns=state.budget_ns,
            baseline_p99_ns=state.baseline.quantile(0.99),
            window_answers=window_count,
            total_answers=state.answers,
            trace_id=trace_id,
        )

    # -------------------------------------------------- attribution context

    def _stack(self) -> List[Any]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def on_delay(self, gap_ns: int, answers: int) -> None:
        """Registry delay-listener: attribute the observation to the
        innermost active plan context on this thread (if any)."""
        stack = self._stack()
        if stack:
            label, expectation = stack[-1]
            self.observe(label, gap_ns, answers, expectation)

    def watched(self, inner: Iterator[Any], label: str,
                expectation: Optional[str]) -> Iterator[Any]:
        """Wrap an answer iterator so delay observations recorded while
        *it* runs are attributed to ``label``.  The context is pushed
        around each resumption, so delays of other generators consumed
        while this one is suspended are not misattributed."""
        ctx = (label, expectation)
        stack = self._stack()
        try:
            while True:
                stack.append(ctx)
                try:
                    item = next(inner)
                finally:
                    stack.pop()
                yield item
        except StopIteration:
            return
        finally:
            self.flush(label)

    def watch_stream(self, inner: Iterator[Any], label: str,
                     expectation: Optional[str] = None,
                     stride: int = 1) -> Iterator[Any]:
        """Per-answer-timed wrapper for streams that do not pass through
        the instrumented block pipeline (serve boundaries, tests).
        ``stride`` samples every n-th gap to cut clock cost."""
        clock = time.perf_counter_ns
        pending = 0
        last = clock()
        try:
            for item in inner:
                now = clock()
                pending += 1
                if pending >= stride:
                    self.observe(label, now - last, pending, expectation)
                    pending = 0
                    last = clock()
                yield item
                if pending == 0:
                    last = clock()  # exclude consumer time from the gap
        finally:
            self.flush(label)

    # ------------------------------------------------------- tail retention

    @contextmanager
    def tail_capture(self, label: str):
        """Trace the wrapped request, but *retain* the trace (in the
        tail ring) only if the request breached its delay budget."""
        if not self.tail_tracing:
            yield None
            return
        from repro import obs
        before = self._violations_total()
        with obs.capture() as tr:
            yield tr
        if self._violations_total() > before:
            trace_id = tr.context.trace_id if tr.context is not None else None
            entry = {
                "label": label,
                "ts": time.time(),
                "tracer": tr,
                "spans": len(tr.spans),
                "trace_id": trace_id,
            }
            if self.tail_dir and trace_id:
                path = self._retain_file(trace_id, tr)
                if path is not None:
                    entry["path"] = path
            self.tail.append(entry)
            registry().count("watchdog.tail_retained")
        else:
            registry().count("watchdog.tail_discarded")

    def _retain_file(self, trace_id: str, tr: Any) -> Optional[str]:
        """Write the breaching request's Chrome trace to the tail dir;
        returns the path (None when the write failed — retention must
        never take the serving path down with it)."""
        try:
            from .export import write_chrome_trace
            os.makedirs(self.tail_dir, exist_ok=True)
            path = os.path.join(self.tail_dir, f"trace-{trace_id}.json")
            write_chrome_trace(path, tr)
            return path
        except OSError:  # pragma: no cover - disk-full etc.
            return None

    def retained_trace_path(self, trace_id: str) -> Optional[str]:
        """Resolve a trace_id (from a violation event or a sketch
        exemplar) to its retained trace file, if one exists."""
        for entry in reversed(self.tail):
            if entry.get("trace_id") == trace_id and "path" in entry:
                path = entry["path"]
                if os.path.exists(path):
                    return path
        if self.tail_dir:
            path = os.path.join(self.tail_dir, f"trace-{trace_id}.json")
            if os.path.exists(path):
                return path
        return None

    def _violations_total(self) -> int:
        with self._lock:
            return sum(s.violations for s in self.plans.values())

    # ------------------------------------------------------------ lifecycle

    def install(self) -> "GuaranteeWatchdog":
        """Attach to the registry's delay stream and start the planner
        wrapping (idempotent)."""
        if not self._installed:
            registry().add_delay_listener(self.on_delay)
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            registry().remove_delay_listener(self.on_delay)
            self._installed = False

    @property
    def active(self) -> bool:
        return self._installed

    def reset(self) -> None:
        with self._lock:
            self.plans.clear()
            self.tail.clear()
            self._expectations.clear()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                label: {
                    "expectation": s.expectation,
                    "answers": s.answers,
                    "budget_ns": s.budget_ns,
                    "baseline_count": s.baseline.count,
                    "checks": s.checks,
                    "violations": s.violations,
                }
                for label, s in self.plans.items()
            }


_MISS = object()
_WATCHDOG = GuaranteeWatchdog()


def watchdog() -> GuaranteeWatchdog:
    """The process-wide watchdog singleton (inert until installed)."""
    return _WATCHDOG


def install(**knobs: Any) -> GuaranteeWatchdog:
    """Install (optionally re-tuned) process watchdog: ``install()`` or
    ``install(factor=4.0, window_samples=256)``."""
    global _WATCHDOG
    if knobs:
        _WATCHDOG.uninstall()
        keep_tail = _WATCHDOG.tail_tracing
        keep_dir = _WATCHDOG.tail_dir
        _WATCHDOG = GuaranteeWatchdog(**knobs)
        _WATCHDOG.tail_tracing = keep_tail
        if _WATCHDOG.tail_dir is None:
            _WATCHDOG.tail_dir = keep_dir
    return _WATCHDOG.install()


def uninstall() -> None:
    _WATCHDOG.uninstall()


def maybe_watch(query: Any, inner: Iterator[Any]) -> Iterator[Any]:
    """Planner hook: when the watchdog is installed, wrap ``inner`` with
    the attribution context for ``query``; otherwise return it as-is."""
    wd = _WATCHDOG
    if not wd._installed:
        return inner
    label = plan_label(query)
    return wd.watched(inner, label, wd.expectation_for(query))


def plan_label(query: Any) -> str:
    """A short, human-readable plan key for events and metric names."""
    try:
        text = str(query)
    except Exception:  # pragma: no cover - defensive
        text = type(query).__name__
    text = " ".join(text.split())
    return text[:80]
