"""Always-available tracing/metrics for the query-evaluation pipeline.

The paper's claims are complexity *shapes* — linear preprocessing,
constant delay, ``||D||^s`` counting — and the pipeline that realises
them (planner, plan cache, Yannakakis passes, columnar kernels, block
enumeration) is instrumented with this module so those shapes can be
read directly off a trace: where preprocessing time goes, which kernels
fire how often, whether a warm run hit the plan cache.

Usage::

    from repro import obs

    with obs.capture() as tr:          # enable a fresh tracer in scope
        list(enumerate_answers(q, db))
    print(obs.render_explain(tr))      # per-phase span tree
    obs.write_chrome_trace("out.json", tr)   # chrome://tracing / Perfetto
    obs.metrics(tr)                    # flat JSON-able counters/gauges

Library code calls the module-level :func:`span`, :func:`count` and
:func:`gauge`, which route to the process-wide tracer.  By default that
is the :data:`~repro.obs.trace.NULL_TRACER` no-op singleton — one
attribute check per instrumentation site, benchmarked under 5% on the
100k-tuple enumeration benchmark (``benchmarks/test_bench_obs_overhead
.py``) — so instrumentation stays on permanently.

Activation: :func:`enable` / :func:`capture` / the CLI flags
(``--trace FILE``, ``--metrics``, ``repro explain``), or the
``REPRO_TRACE`` environment variable — ``1``/``true`` enables tracing
for the process, any other non-empty value is treated as a path and the
Chrome trace (plus a ``<path>.metrics.json`` dump) is written there at
interpreter exit.

Independently of the scoped tracer, every :func:`count`/:func:`gauge`
call and every :func:`span` duration also feeds the process-wide
always-on :mod:`~repro.obs.registry` (counters, gauges, log-bucketed
quantile sketches), which is what ``repro metrics-serve`` / ``repro
top`` expose and the :mod:`~repro.obs.watchdog` monitors.  Disable it
with ``REPRO_METRICS=0``; enable the delay-guarantee watchdog at
import with ``REPRO_WATCHDOG=1``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Union

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    metrics_dump,
    render_explain,
    write_chrome_trace as _write_chrome_trace,
)
from repro.obs.registry import (
    MetricsRegistry,
    registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    SAMPLE_ENV_VAR,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    activate_context,
    current_context,
    current_trace_id,
    sample_rate,
    scoped_context,
)

ENV_VAR = "REPRO_TRACE"
WATCHDOG_ENV_VAR = "REPRO_WATCHDOG"

_TRACER: Union[Tracer, NullTracer] = NULL_TRACER
_REGISTRY: MetricsRegistry = registry()


def tracer() -> Union[Tracer, NullTracer]:
    """The currently active tracer (the null singleton when disabled)."""
    return _TRACER


def enabled() -> bool:
    """Is tracing currently recording?"""
    return _TRACER.enabled


def span(name: str, **attrs: Any):
    """Context manager timing one named region.

    With a tracer active it records a full span (tree position, pid,
    attributes); otherwise, with the always-on registry enabled, the
    duration still lands in the registry's ``phase.<name>`` latency
    sketch; with both off it is the usual no-op null context."""
    t = _TRACER
    if t.enabled:
        return t.span(name, **attrs)
    r = _REGISTRY
    if r.enabled:
        return r.timed(name)
    return t.span(name, **attrs)


def count(name: str, n: Any = 1) -> None:
    """Accumulate onto a named counter: the scoped tracer when one is
    active, and always the process-wide registry."""
    t = _TRACER
    if t.enabled:
        t.count(name, n)
    _REGISTRY.count(name, n)


def gauge(name: str, value: Any) -> None:
    """Record a named gauge value (tracer when active + registry)."""
    t = _TRACER
    if t.enabled:
        t.gauge(name, value)
    _REGISTRY.gauge(name, value)


def delay(gap_ns: int, answers: int = 1) -> None:
    """Record an enumeration gap covering ``answers`` answers into the
    registry's ``enum.delay_ns`` sketch (amortised: the sketch stores
    the per-answer share with weight = answers) and notify any delay
    listeners (the guarantee watchdog)."""
    _REGISTRY.record_delay(gap_ns, answers)


def event(name: str, **fields: Any) -> Dict[str, Any]:
    """Emit a discrete structured event (NDJSON log + in-memory ring +
    an ``event.<name>`` registry counter)."""
    from repro.obs.expose import emit_event

    return emit_event(name, **fields)


def propagation_context() -> Optional[TraceContext]:
    """The active tracer's :class:`TraceContext` positioned at the
    calling thread's current span — what the parallel layer ships in
    wave payloads so worker spans join the request tree.  ``None`` when
    tracing is off or the tracer carries no request identity."""
    return _TRACER.propagation_context()


def enable(t: Optional[Tracer] = None) -> Tracer:
    """Install ``t`` (or a fresh :class:`Tracer`) as the active tracer
    and activate its trace context on the calling thread."""
    global _TRACER
    _TRACER = t if t is not None else Tracer()
    activate_context(_TRACER.context)
    return _TRACER


def disable() -> Union[Tracer, NullTracer]:
    """Stop recording; returns the tracer that was active."""
    global _TRACER
    previous = _TRACER
    _TRACER = NULL_TRACER
    activate_context(None)
    return previous


@contextmanager
def capture(t: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Enable a tracer for the scope, restoring the previous one after::

        with obs.capture() as tr:
            run_workload()
        print(obs.render_explain(tr))
    """
    global _TRACER
    previous = _TRACER
    _TRACER = t if t is not None else Tracer()
    prev_ctx = activate_context(_TRACER.context)
    try:
        yield _TRACER
    finally:
        _TRACER = previous
        activate_context(prev_ctx)


def metrics(t: Optional[Union[Tracer, NullTracer]] = None) -> Dict[str, Any]:
    """Flat metrics dump of ``t`` (default: the active tracer); always
    includes plan-cache stats and the calibrated timer overhead."""
    return metrics_dump(t if t is not None else _TRACER)


def write_chrome_trace(path: str,
                       t: Optional[Union[Tracer, NullTracer]] = None) -> str:
    """Write the Chrome trace-event JSON of ``t`` (default active)."""
    return _write_chrome_trace(path, t if t is not None else _TRACER)


def _atexit_dump(path: str) -> str:
    """The ``REPRO_TRACE=<path>`` exit hook: Chrome trace at ``path``
    plus a ``<path>.metrics.json`` metrics dump (counters/gauges/
    plan-cache/registry) so the flat numbers are not lost unless
    ``--metrics`` was passed explicitly."""
    import json

    _write_chrome_trace(path, _TRACER)
    metrics_path = path + ".metrics.json"
    with open(metrics_path, "w") as fh:
        json.dump(metrics_dump(_TRACER), fh, indent=2, default=str)
    return metrics_path


def _init_from_environment() -> None:
    """Honour ``REPRO_TRACE`` at import: enable tracing, and when the
    value names a file, dump the Chrome trace + metrics there at
    process exit.  ``REPRO_WATCHDOG`` installs the delay-guarantee
    watchdog process-wide."""
    value = os.environ.get(ENV_VAR, "").strip()
    if value and value.lower() not in ("0", "false", "off", "no"):
        enable()
        if value.lower() not in ("1", "true", "yes", "on"):
            import atexit

            atexit.register(lambda: _atexit_dump(value))
    wd = os.environ.get(WATCHDOG_ENV_VAR, "").strip()
    if wd and wd.lower() not in ("0", "false", "off", "no"):
        from repro.obs.watchdog import install as _install_watchdog

        watchdog = _install_watchdog()
        if wd.lower() not in ("1", "true", "yes", "on"):
            # a path value also turns on tail-based trace retention,
            # writing breaching requests' traces under that directory
            watchdog.tail_tracing = True
            watchdog.tail_dir = wd


_init_from_environment()

__all__ = [
    "ENV_VAR",
    "SAMPLE_ENV_VAR",
    "WATCHDOG_ENV_VAR",
    "NULL_SPAN",
    "NULL_TRACER",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "TraceContext",
    "Tracer",
    "activate_context",
    "capture",
    "chrome_trace",
    "chrome_trace_events",
    "count",
    "current_context",
    "current_trace_id",
    "delay",
    "disable",
    "enable",
    "enabled",
    "event",
    "gauge",
    "metrics",
    "metrics_dump",
    "propagation_context",
    "registry",
    "render_explain",
    "sample_rate",
    "scoped_context",
    "span",
    "tracer",
    "write_chrome_trace",
]
