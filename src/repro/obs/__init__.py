"""Always-available tracing/metrics for the query-evaluation pipeline.

The paper's claims are complexity *shapes* — linear preprocessing,
constant delay, ``||D||^s`` counting — and the pipeline that realises
them (planner, plan cache, Yannakakis passes, columnar kernels, block
enumeration) is instrumented with this module so those shapes can be
read directly off a trace: where preprocessing time goes, which kernels
fire how often, whether a warm run hit the plan cache.

Usage::

    from repro import obs

    with obs.capture() as tr:          # enable a fresh tracer in scope
        list(enumerate_answers(q, db))
    print(obs.render_explain(tr))      # per-phase span tree
    obs.write_chrome_trace("out.json", tr)   # chrome://tracing / Perfetto
    obs.metrics(tr)                    # flat JSON-able counters/gauges

Library code calls the module-level :func:`span`, :func:`count` and
:func:`gauge`, which route to the process-wide tracer.  By default that
is the :data:`~repro.obs.trace.NULL_TRACER` no-op singleton — one
attribute check per instrumentation site, benchmarked under 5% on the
100k-tuple enumeration benchmark (``benchmarks/test_bench_obs_overhead
.py``) — so instrumentation stays on permanently.

Activation: :func:`enable` / :func:`capture` / the CLI flags
(``--trace FILE``, ``--metrics``, ``repro explain``), or the
``REPRO_TRACE`` environment variable — ``1``/``true`` enables tracing
for the process, any other non-empty value is treated as a path and the
Chrome trace is written there at interpreter exit.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Union

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    metrics_dump,
    render_explain,
    write_chrome_trace as _write_chrome_trace,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)

ENV_VAR = "REPRO_TRACE"

_TRACER: Union[Tracer, NullTracer] = NULL_TRACER


def tracer() -> Union[Tracer, NullTracer]:
    """The currently active tracer (the null singleton when disabled)."""
    return _TRACER


def enabled() -> bool:
    """Is tracing currently recording?"""
    return _TRACER.enabled


def span(name: str, **attrs: Any):
    """Context manager timing one named region on the active tracer."""
    return _TRACER.span(name, **attrs)


def count(name: str, n: Any = 1) -> None:
    """Accumulate onto a named counter (no-op while disabled)."""
    t = _TRACER
    if t.enabled:
        t.count(name, n)


def gauge(name: str, value: Any) -> None:
    """Record a named gauge value (no-op while disabled)."""
    t = _TRACER
    if t.enabled:
        t.gauge(name, value)


def enable(t: Optional[Tracer] = None) -> Tracer:
    """Install ``t`` (or a fresh :class:`Tracer`) as the active tracer."""
    global _TRACER
    _TRACER = t if t is not None else Tracer()
    return _TRACER


def disable() -> Union[Tracer, NullTracer]:
    """Stop recording; returns the tracer that was active."""
    global _TRACER
    previous = _TRACER
    _TRACER = NULL_TRACER
    return previous


@contextmanager
def capture(t: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Enable a tracer for the scope, restoring the previous one after::

        with obs.capture() as tr:
            run_workload()
        print(obs.render_explain(tr))
    """
    global _TRACER
    previous = _TRACER
    _TRACER = t if t is not None else Tracer()
    try:
        yield _TRACER
    finally:
        _TRACER = previous


def metrics(t: Optional[Union[Tracer, NullTracer]] = None) -> Dict[str, Any]:
    """Flat metrics dump of ``t`` (default: the active tracer); always
    includes plan-cache stats and the calibrated timer overhead."""
    return metrics_dump(t if t is not None else _TRACER)


def write_chrome_trace(path: str,
                       t: Optional[Union[Tracer, NullTracer]] = None) -> str:
    """Write the Chrome trace-event JSON of ``t`` (default active)."""
    return _write_chrome_trace(path, t if t is not None else _TRACER)


def _init_from_environment() -> None:
    """Honour ``REPRO_TRACE`` at import: enable tracing, and when the
    value names a file, dump the Chrome trace there at process exit."""
    value = os.environ.get(ENV_VAR, "").strip()
    if not value or value.lower() in ("0", "false", "off", "no"):
        return
    enable()
    if value.lower() in ("1", "true", "yes", "on"):
        return
    import atexit

    atexit.register(lambda: _write_chrome_trace(value, _TRACER))


_init_from_environment()

__all__ = [
    "ENV_VAR",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "capture",
    "chrome_trace",
    "chrome_trace_events",
    "count",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "metrics",
    "metrics_dump",
    "render_explain",
    "span",
    "tracer",
    "write_chrome_trace",
]
