"""The observatory dashboard: benchmark history rendered as one
self-contained HTML file (inline SVG, no external assets or scripts).

``repro report -o report.html`` reads ``benchmarks/history/*.jsonl`` and
emits, per benchmark case:

* a **trajectory chart** — the headline measurement (metric value at the
  largest size) across runs, with the rolling-baseline median and the
  regression threshold drawn as reference lines, so a slowdown is
  visible as a point leaving the band;
* a **scaling chart** — the latest run's size sweep on log-log axes with
  the fitted slope line and its CI, the visual form of the verdict;
* the **verdict badge** (measured vs expected shape) and a regression
  badge when the latest run trips the gate;
* the underlying numbers as a table (the accessibility/table view).

Charts follow the repo's dataviz conventions: one series per chart,
recessive hairline grid, status colors reserved for verdict/regression
state and always paired with a text label, light and dark palettes from
the same ramp.
"""

from __future__ import annotations

import html
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.observatory import (
    BASELINE_N,
    MIN_BAND,
    Observatory,
    Regression,
    headline,
)

# palette (validated defaults; swapped wholesale for dark mode in CSS)
_CSS = """
:root { color-scheme: light dark; }
.obs-root {
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --series: #2a78d6; --fit: #898781;
  --good: #0ca30c; --warning: #fab219; --critical: #d03b3b;
  --band: rgba(250, 178, 25, 0.12);
  --border: rgba(11, 11, 11, 0.10);
  background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 0; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  .obs-root {
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --series: #3987e5; --fit: #898781;
    --band: rgba(250, 178, 25, 0.10);
    --border: rgba(255, 255, 255, 0.10);
  }
}
.obs-root h1 { font-size: 20px; margin: 0 0 4px; }
.obs-root h2 { font-size: 16px; margin: 28px 0 8px; }
.obs-root .sub { color: var(--ink-2); margin: 0 0 20px; }
.card {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px; margin: 0 0 14px;
}
.card-head { display: flex; flex-wrap: wrap; align-items: baseline;
             gap: 10px; margin-bottom: 6px; }
.card-head .case { font-weight: 600; }
.card-head .fitline { color: var(--ink-2); font-size: 13px; }
.badge {
  display: inline-block; padding: 1px 8px; border-radius: 10px;
  font-size: 12px; font-weight: 600; border: 1px solid var(--border);
}
.badge-ok { color: var(--good); }
.badge-mismatch { color: var(--critical); }
.badge-inconclusive { color: var(--muted); }
.badge-regression { color: var(--warning); }
.charts { display: flex; flex-wrap: wrap; gap: 18px; }
.chart-title { font-size: 12px; color: var(--ink-2); margin: 0 0 2px; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif;
           fill: var(--muted); }
svg .lbl { fill: var(--ink-2); }
details { margin-top: 8px; }
summary { color: var(--ink-2); font-size: 13px; cursor: pointer; }
table { border-collapse: collapse; font-size: 12px; margin-top: 6px; }
th, td { padding: 2px 10px 2px 0; text-align: right;
         font-variant-numeric: tabular-nums; }
th { color: var(--muted); font-weight: 500; }
td:first-child, th:first-child { text-align: left; }
.footer { color: var(--muted); font-size: 12px; margin-top: 24px; }
"""

_W, _H = 420, 190
_ML, _MR, _MT, _MB = 58, 12, 14, 30  # margins


def _fmt_value(value: Optional[float], metric: str) -> str:
    if value is None:
        return "—"
    if metric.endswith("_seconds"):
        if value <= 0:
            return "0s"
        if value < 1e-3:
            return f"{value * 1e6:.3g}µs"
        if value < 1.0:
            return f"{value * 1e3:.3g}ms"
        return f"{value:.3g}s"
    return f"{value:.4g}"


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


def _poly(points: Sequence[Tuple[float, float]]) -> str:
    return " ".join(f"{x:.1f},{y:.1f}" for x, y in points)


def _svg_open(width: int = _W, height: int = _H) -> List[str]:
    return [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
            f'height="{height}" role="img">']


def _grid_lines(ys: Sequence[float], labels: Sequence[str]) -> List[str]:
    parts = []
    for y, label in zip(ys, labels):
        parts.append(f'<line x1="{_ML}" y1="{y:.1f}" x2="{_W - _MR}" '
                     f'y2="{y:.1f}" stroke="var(--grid)" '
                     f'stroke-width="1"/>')
        parts.append(f'<text x="{_ML - 6}" y="{y + 3.5:.1f}" '
                     f'text-anchor="end">{_esc(label)}</text>')
    return parts


def trajectory_svg(runs: Sequence[Dict[str, Any]],
                   regression: Optional[Regression]) -> str:
    """Headline value per run, with baseline median and gate threshold."""
    metric = runs[-1]["metric"]
    values = [headline(r) for r in runs]
    refs = [v for v in values if v > 0]
    top_candidates = values[:]
    if regression and regression.threshold:
        top_candidates.append(regression.threshold)
    top = max(top_candidates) * 1.12 or 1.0
    plot_w = _W - _ML - _MR
    plot_h = _H - _MT - _MB

    def sx(i: int) -> float:
        if len(values) == 1:
            return _ML + plot_w / 2
        return _ML + plot_w * i / (len(values) - 1)

    def sy(v: float) -> float:
        return _MT + plot_h * (1 - v / top)

    parts = _svg_open()
    grid_vals = [0.0, top / 2, top]
    parts += _grid_lines([sy(v) for v in grid_vals],
                         [_fmt_value(v, metric) for v in grid_vals])
    # rolling baseline + gate threshold (the regression band)
    if regression and regression.baseline is not None:
        by, ty = sy(regression.baseline), sy(regression.threshold)
        parts.append(f'<rect x="{_ML}" y="{ty:.1f}" width="{plot_w}" '
                     f'height="{max(by - ty, 0):.1f}" fill="var(--band)"/>')
        parts.append(f'<line x1="{_ML}" y1="{by:.1f}" x2="{_W - _MR}" '
                     f'y2="{by:.1f}" stroke="var(--axis)" '
                     f'stroke-width="1" stroke-dasharray="5 4"/>')
        parts.append(f'<line x1="{_ML}" y1="{ty:.1f}" x2="{_W - _MR}" '
                     f'y2="{ty:.1f}" stroke="var(--warning)" '
                     f'stroke-width="1" stroke-dasharray="2 3"/>')
        parts.append(f'<text x="{_W - _MR}" y="{ty - 4:.1f}" '
                     f'text-anchor="end">gate</text>')
    # the series
    pts = [(sx(i), sy(v)) for i, v in enumerate(values)]
    if len(pts) > 1:
        parts.append(f'<polyline points="{_poly(pts)}" fill="none" '
                     f'stroke="var(--series)" stroke-width="2" '
                     f'stroke-linejoin="round"/>')
    flagged = bool(regression and regression.flagged)
    for i, ((x, y), run) in enumerate(zip(pts, runs)):
        last = i == len(pts) - 1
        fill = ("var(--critical)" if (last and flagged)
                else "var(--series)")
        prov = run.get("provenance", {})
        tip = (f"run {i + 1}/{len(runs)} — "
               f"{_fmt_value(values[i], metric)} at n="
               f"{max(p['n'] for p in run['points'])} | "
               f"{prov.get('timestamp', '?')} | "
               f"git {prov.get('git_sha', '?')} | "
               f"engine {prov.get('engine', '?')}")
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" '
                     f'r="{4.5 if last else 3.5}" fill="{fill}" '
                     f'stroke="var(--surface)" stroke-width="2">'
                     f'<title>{_esc(tip)}</title></circle>')
    parts.append(f'<line x1="{_ML}" y1="{_H - _MB}" x2="{_W - _MR}" '
                 f'y2="{_H - _MB}" stroke="var(--axis)" stroke-width="1"/>')
    parts.append(f'<text x="{_ML}" y="{_H - 8}">run 1</text>')
    parts.append(f'<text x="{_W - _MR}" y="{_H - 8}" text-anchor="end">'
                 f'run {len(values)}</text>')
    parts.append("</svg>")
    return "".join(parts)


def loglog_svg(record: Dict[str, Any]) -> str:
    """The latest size sweep on log-log axes with the fitted slope."""
    metric = record["metric"]
    points = sorted(record["points"], key=lambda p: p["n"])
    floor = 1e-9
    xs = [math.log10(p["n"]) for p in points if p["n"] > 0]
    ys = [math.log10(max(p["value"], floor)) for p in points if p["n"] > 0]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi - x_lo < 1e-9:
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if y_hi - y_lo < 0.5:  # keep flat series visually flat, not zoomed
        mid = (y_hi + y_lo) / 2
        y_lo, y_hi = mid - 0.75, mid + 0.75
    pad_x = 0.06 * (x_hi - x_lo)
    pad_y = 0.12 * (y_hi - y_lo)
    x_lo, x_hi = x_lo - pad_x, x_hi + pad_x
    y_lo, y_hi = y_lo - pad_y, y_hi + pad_y
    plot_w = _W - _ML - _MR
    plot_h = _H - _MT - _MB

    def sx(x: float) -> float:
        return _ML + plot_w * (x - x_lo) / (x_hi - x_lo)

    def sy(y: float) -> float:
        return _MT + plot_h * (1 - (y - y_lo) / (y_hi - y_lo))

    parts = _svg_open()
    # decade gridlines on y
    y_ticks = range(math.ceil(y_lo), math.floor(y_hi) + 1)
    parts += _grid_lines([sy(t) for t in y_ticks],
                         [_fmt_value(10.0 ** t, metric) for t in y_ticks])
    # decade ticks on x
    for t in range(math.ceil(x_lo), math.floor(x_hi) + 1):
        parts.append(f'<line x1="{sx(t):.1f}" y1="{_MT}" '
                     f'x2="{sx(t):.1f}" y2="{_H - _MB}" '
                     f'stroke="var(--grid)" stroke-width="1"/>')
        parts.append(f'<text x="{sx(t):.1f}" y="{_H - 8}" '
                     f'text-anchor="middle">1e{t}</text>')
    fit = record.get("fit")
    if fit and fit.get("slope") is not None:
        fy0 = fit["intercept"] + fit["slope"] * x_lo
        fy1 = fit["intercept"] + fit["slope"] * x_hi
        parts.append(f'<line x1="{sx(x_lo):.1f}" y1="{sy(fy0):.1f}" '
                     f'x2="{sx(x_hi):.1f}" y2="{sy(fy1):.1f}" '
                     f'stroke="var(--fit)" stroke-width="1.5" '
                     f'stroke-dasharray="6 4"/>')
        label = f"slope {fit['slope']:.2f}"
        if fit.get("ci_low") is not None:
            label += f" [{fit['ci_low']:.2f}, {fit['ci_high']:.2f}]"
        parts.append(f'<text x="{_W - _MR}" y="{_MT + 10}" '
                     f'text-anchor="end" class="lbl">{_esc(label)}</text>')
    for p, x, y in zip(points, xs, ys):
        tip = f"n={p['n']}: {_fmt_value(p['value'], metric)}"
        parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="4" '
                     f'fill="var(--series)" stroke="var(--surface)" '
                     f'stroke-width="2"><title>{_esc(tip)}</title>'
                     f'</circle>')
    parts.append(f'<line x1="{_ML}" y1="{_H - _MB}" x2="{_W - _MR}" '
                 f'y2="{_H - _MB}" stroke="var(--axis)" stroke-width="1"/>')
    parts.append("</svg>")
    return "".join(parts)


def _verdict_badge(record: Dict[str, Any]) -> str:
    verdict = record.get("verdict", "inconclusive")
    ok = record.get("verdict_ok")
    if verdict == "inconclusive" or ok is None:
        cls, mark = "badge-inconclusive", "?"
    elif ok:
        cls, mark = "badge-ok", "✓"
    else:
        cls, mark = "badge-mismatch", "✗"
    expected = record.get("expectation")
    tail = f" (expected {expected})" if expected else ""
    return (f'<span class="badge {cls}">{mark} {_esc(verdict)}'
            f'{_esc(tail)}</span>')


def _case_table(record: Dict[str, Any]) -> str:
    metric = record["metric"]
    extra_keys: List[str] = []
    for key in ("preprocessing_seconds", "delay_p95_seconds",
                "delay_p99_seconds", "delay_p999_seconds",
                "throughput_per_s", "outputs"):
        if key != metric and any(key in p for p in record["points"]):
            extra_keys.append(key)
    head = "".join(f"<th>{_esc(k)}</th>"
                   for k in ["n", metric] + extra_keys)
    rows = []
    for p in sorted(record["points"], key=lambda q: q["n"]):
        cells = [f"<td>{p['n']}</td>",
                 f"<td>{_fmt_value(p['value'], metric)}</td>"]
        for key in extra_keys:
            value = p.get(key)
            if isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool):
                cells.append(f"<td>{_fmt_value(value, key)}</td>")
            else:
                cells.append("<td>—</td>")
        rows.append("<tr>" + "".join(cells) + "</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>")


def _case_card(suite: str, case: str, runs: Sequence[Dict[str, Any]],
               regression: Optional[Regression]) -> str:
    latest = runs[-1]
    fit = latest.get("fit") or {}
    fitline = ""
    if fit.get("slope") is not None:
        fitline = (f"slope {fit['slope']:.2f}"
                   + (f" [{fit['ci_low']:.2f}, {fit['ci_high']:.2f}]"
                      if fit.get("ci_low") is not None else "")
                   + f" over {len(latest['points'])} sizes"
                   + f" · {len(runs)} run{'s' if len(runs) != 1 else ''}")
    badges = [_verdict_badge(latest)]
    if regression and regression.flagged:
        badges.append(f'<span class="badge badge-regression">▲ regression '
                      f'x{regression.ratio:.2f} vs baseline</span>')
    return f"""
<div class="card">
  <div class="card-head">
    <span class="case">{_esc(case)}</span>
    {' '.join(badges)}
    <span class="fitline">{_esc(latest["metric"])} · {_esc(fitline)}</span>
  </div>
  <div class="charts">
    <div><p class="chart-title">trajectory (headline at largest n, per
      run)</p>{trajectory_svg(runs, regression)}</div>
    <div><p class="chart-title">latest scaling sweep (log-log)</p>
      {loglog_svg(latest)}</div>
  </div>
  <details><summary>latest run data</summary>{_case_table(latest)}
  </details>
</div>"""


def render_dashboard(observatory: Observatory,
                     baseline_n: int = BASELINE_N,
                     min_band: float = MIN_BAND,
                     title: str = "Complexity observatory") -> str:
    """The full dashboard HTML for one history directory."""
    cases = observatory.cases()
    regressions = {(r.suite, r.case): r
                   for r in observatory.regressions(
                       baseline_n=baseline_n, min_band=min_band)}
    sections: List[str] = []
    total_runs = sum(len(runs) for runs in cases.values())
    flagged = [r for r in regressions.values() if r.flagged]
    mismatched = [runs[-1] for runs in cases.values()
                  if runs[-1].get("verdict_ok") is False]
    by_suite: Dict[str, List[Tuple[str, List[Dict[str, Any]]]]] = {}
    for (suite, case), runs in sorted(cases.items()):
        by_suite.setdefault(suite, []).append((case, runs))
    for suite, case_list in sorted(by_suite.items()):
        sections.append(f"<h2>suite: {_esc(suite)}</h2>")
        for case, runs in case_list:
            sections.append(_case_card(
                suite, case, runs, regressions.get((suite, case))))
    latest_prov: Dict[str, Any] = {}
    for runs in cases.values():
        prov = runs[-1].get("provenance", {})
        if prov.get("timestamp", "") >= latest_prov.get("timestamp", ""):
            latest_prov = prov
    sub = (f"{len(cases)} cases · {total_runs} recorded runs · "
           f"{len(flagged)} regression flag{'s' if len(flagged) != 1 else ''}"
           f" · {len(mismatched)} verdict mismatch"
           f"{'es' if len(mismatched) != 1 else ''}")
    provline = ""
    if latest_prov:
        provline = (f"latest run: {latest_prov.get('timestamp', '?')} · git "
                    f"{latest_prov.get('git_sha', '?')} · python "
                    f"{latest_prov.get('python', '?')} · "
                    f"{latest_prov.get('platform', '?')} · engine "
                    f"{latest_prov.get('engine', '?')}")
    if not cases:
        sections.append('<div class="card">history is empty — run '
                        '<code>repro bench</code> first</div>')
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_CSS}</style>
</head>
<body class="obs-root">
<h1>{_esc(title)}</h1>
<p class="sub">{_esc(sub)}<br>{_esc(provline)}</p>
{''.join(sections)}
<p class="footer">Verdicts compare the fitted log-log slope CI against
the shape the classifier predicts (constant delay for free-connex ACQs,
Theorem 4.6; linear total time for acyclic evaluation, Theorem 4.2;
superlinear for conditional lower-bound instances, Theorems 4.8/4.9).
The shaded band is the regression gate: rolling median of the last
{baseline_n} runs plus the noise band.</p>
</body>
</html>
"""


_ANALYZE_STATUS_CLS = {"ok": "badge-ok", "FLAG": "badge-mismatch",
                       "info": "badge-inconclusive"}


def render_analyze_html(analysis: Dict[str, Any],
                        title: str = "repro analyze") -> str:
    """The ``repro analyze --html`` panel: one card of estimated-vs-
    actual operator rows (the data dict from
    :func:`repro.obs.analyze.analyze`), sharing the dashboard's CSS so
    the two reports sit side by side visually."""
    facts = "".join(f", {k}={v}" for k, v in analysis["facts"].items())
    meta_rows = [
        ("query", analysis["query"]),
        ("class", f"{analysis['query_class']}{facts}"),
        ("sizes", " → ".join(str(s) for s in analysis["sizes"])),
        ("answers", " → ".join(str(a) for a in analysis["answers"])),
    ]
    if analysis["trace_ids"]:
        meta_rows.append(("traces", ", ".join(analysis["trace_ids"])))
    meta = "".join(f"<tr><th>{_esc(k)}</th>"
                   f"<td style='text-align:left'>{_esc(v)}</td></tr>"
                   for k, v in meta_rows)
    rows = []
    for r in analysis["rows"]:
        cls = _ANALYZE_STATUS_CLS.get(r["status"], "badge-inconclusive")
        rows.append(
            f"<tr><td>{_esc(r['operator'])}</td>"
            f"<td style='text-align:left'>{_esc(r['expected'])}</td>"
            f"<td style='text-align:left'>{_esc(r['actual'])}</td>"
            f"<td><span class='badge {cls}'>{_esc(r['status'])}</span></td>"
            f"<td style='text-align:left'>{_esc(r['note'])}</td></tr>")
    flagged = analysis["flagged"]
    if flagged:
        summary = (f'<span class="badge badge-mismatch">✗ '
                   f'{len(flagged)} operator(s) contradict the predicted '
                   f'class: {_esc(", ".join(flagged))}</span>')
    else:
        summary = ('<span class="badge badge-ok">✓ all operators within '
                   'their predicted class</span>')
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_CSS}</style>
</head>
<body class="obs-root">
<h1>{_esc(title)}</h1>
<p class="sub">estimated vs actual, per operator — expectations from the
classifier (Theorems 4.2/4.6), actuals from span attributes and the
per-answer delay sketch</p>
<div class="card">
  <table>{meta}</table>
</div>
<div class="card">
  <div class="card-head">{summary}</div>
  <table>
    <thead><tr><th>operator</th><th>expected</th><th>actual</th>
    <th>status</th><th>note</th></tr></thead>
    <tbody>{''.join(rows)}</tbody>
  </table>
</div>
</body>
</html>
"""


def write_analyze_html(path: str, analysis: Dict[str, Any]) -> str:
    """Render :func:`render_analyze_html` to ``path``."""
    with open(path, "w") as fh:
        fh.write(render_analyze_html(analysis))
    return path


def write_dashboard(path: str, history_dir: str,
                    baseline_n: int = BASELINE_N,
                    min_band: float = MIN_BAND
                    ) -> Tuple[str, List[Regression]]:
    """Render the dashboard for ``history_dir`` to ``path``; returns the
    path and the per-case regression standings (for the gate)."""
    observatory = Observatory(history_dir)
    html_text = render_dashboard(observatory, baseline_n=baseline_n,
                                 min_band=min_band)
    with open(path, "w") as fh:
        fh.write(html_text)
    return path, observatory.regressions(baseline_n=baseline_n,
                                         min_band=min_band)
