"""Process-wide, always-on metrics registry.

The scoped ``Tracer`` (PR 3) answers "what happened inside this one
request" — it is explicitly enabled, captures every span, and is torn
down with the request.  The serving tier needs the opposite: a metric
store that is *always* on, cheap enough that nobody ever turns it off,
and covers the whole process lifetime.  That is this registry:

* **counters** — monotone event totals (``plancache.hits``,
  ``enum.answers``, ``parallel.pool_respawn``, ...),
* **gauges** — last-write-wins observations (worker counts, timer
  overhead),
* **sketches** — mergeable log-bucketed quantile sketches
  (:mod:`repro.obs.sketch`) for per-enumerator delay and per-phase
  latency distributions (p50/p95/p99/p99.9 online, constant memory).

Everything lives in one flat dotted namespace, fed through the
existing ``obs.count``/``obs.gauge``/``obs.span`` call sites — library
code does not know the registry exists.  Parallel workers run their
own registry instance and ``drain()`` it into the result metadata of
each wave round-trip; the driver folds the state back in with
``merge_state`` (order-independent, see sketch.py), so one registry
covers all four engine tiers.

Gating: ``REPRO_METRICS=0`` (or ``off``/``false``/``no``) disables
collection process-wide; anything else — including unset — leaves it
on.  Always-on is the point: the <2% overhead guard in
``benchmarks/test_bench_obs_overhead.py`` keeps that honest.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .sketch import QuantileSketch
from .trace import current_trace_id

_FALSY = {"0", "off", "false", "no"}


def _env_enabled() -> bool:
    return os.environ.get("REPRO_METRICS", "").strip().lower() not in _FALSY


class _Timed:
    """Context manager recording a wall-clock duration into a phase
    sketch.  Supports ``.set()`` so it can stand in for a tracer span
    at ``obs.span`` call sites without the caller caring which it got."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0

    def __enter__(self) -> "_Timed":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._registry.observe(
            "phase." + self._name, time.perf_counter_ns() - self._start)

    def set(self, key: str, value: Any = None) -> None:
        """Attribute sink: phase sketches keep durations only (same
        signature as :meth:`repro.obs.trace.Span.set`)."""


class MetricsRegistry:
    """Thread-safe store of counters, gauges, and quantile sketches.

    One lock guards all three maps.  The hot operations (``count``,
    ``observe``) hold it for a dict update and a sketch ``add`` — a few
    hundred ns — which the overhead bench bounds at <2% of the 100k
    enumeration run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Any] = {}
        self._sketches: Dict[str, QuantileSketch] = {}
        self._delay_listeners: List[Callable[[int, int], None]] = []
        self.enabled = _env_enabled()

    # ------------------------------------------------------------- writing

    def count(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: int, weight: int = 1,
                trace_id: Optional[str] = None) -> None:
        """Add an observation to the named sketch (created on first use).

        With a ``trace_id`` the observation doubles as the sketch
        bucket's exemplar (see :mod:`repro.obs.sketch`)."""
        if not self.enabled:
            return
        with self._lock:
            sketch = self._sketches.get(name)
            if sketch is None:
                sketch = self._sketches[name] = QuantileSketch()
            sketch.add(value, weight, trace_id=trace_id)

    def record_delay(self, gap_ns: int, answers: int = 1,
                     name: str = "enum.delay_ns") -> None:
        """Record an enumeration gap covering ``answers`` answers.

        Block-batched producers call this once per block: the sketch
        gets the amortised per-answer delay with weight=answers, so
        quantiles are still per-answer while the hot loop pays one
        clock read per block.  When the calling thread carries a
        sampled trace context, its trace_id rides along as the bucket
        exemplar — the tail-to-trace link.  Installed delay listeners
        (the guarantee watchdog) see the raw (gap, answers) pair."""
        if not self.enabled or answers <= 0:
            return
        per_answer = gap_ns // answers
        trace_id = current_trace_id()
        with self._lock:
            sketch = self._sketches.get(name)
            if sketch is None:
                sketch = self._sketches[name] = QuantileSketch()
            sketch.add(per_answer, answers, trace_id=trace_id)
        for listener in self._delay_listeners:
            listener(gap_ns, answers)

    def timed(self, name: str) -> _Timed:
        """A lightweight span substitute: records wall duration into the
        ``phase.<name>`` sketch, no tree, no per-span allocation kept."""
        return _Timed(self, name)

    # --------------------------------------------------------- listeners

    def add_delay_listener(self, fn: Callable[[int, int], None]) -> None:
        with self._lock:
            if fn not in self._delay_listeners:
                self._delay_listeners = self._delay_listeners + [fn]

    def remove_delay_listener(self, fn: Callable[[int, int], None]) -> None:
        with self._lock:
            self._delay_listeners = [
                f for f in self._delay_listeners if f is not fn]

    # ------------------------------------------------------------- reading

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def sketch(self, name: str) -> Optional[QuantileSketch]:
        """A point-in-time copy of the named sketch (None if absent)."""
        with self._lock:
            sketch = self._sketches.get(name)
            return sketch.copy() if sketch is not None else None

    def snapshot(self) -> Dict[str, Any]:
        """Consistent point-in-time view: plain dicts, sketches as
        ``summary()`` digests.  Safe to JSON-serialize."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            sketches = {k: v.copy() for k, v in self._sketches.items()}
        return {
            "counters": counters,
            "gauges": gauges,
            "sketches": {k: v.summary() for k, v in sketches.items()},
        }

    def sketches(self) -> Dict[str, QuantileSketch]:
        """Point-in-time copies of all sketches (for exposition code
        that needs arbitrary quantiles, not just the summary set)."""
        with self._lock:
            return {k: v.copy() for k, v in self._sketches.items()}

    # ----------------------------------------------------------- transport

    def drain(self) -> Optional[Dict[str, Any]]:
        """Atomically take-and-reset the accumulated state.

        Workers call this after each task batch and ship the result in
        the wave round-trip metadata; returns ``None`` when there is
        nothing to ship, so idle round-trips stay payload-free."""
        with self._lock:
            if not self._counters and not self._gauges and not self._sketches:
                return None
            state = {
                "counters": self._counters,
                "gauges": self._gauges,
                "sketches": {k: v.to_dict()
                             for k, v in self._sketches.items()},
            }
            self._counters = {}
            self._gauges = {}
            self._sketches = {}
        return state

    def merge_state(self, state: Optional[Dict[str, Any]]) -> None:
        """Fold a ``drain()`` payload from another process into this
        registry.  Counter addition and sketch merge are commutative,
        so wave arrival order does not matter."""
        if not state or not self.enabled:
            return
        counters = state.get("counters") or {}
        gauges = state.get("gauges") or {}
        sketches = state.get("sketches") or {}
        with self._lock:
            for name, n in counters.items():
                self._counters[name] = self._counters.get(name, 0) + n
            self._gauges.update(gauges)
            for name, data in sketches.items():
                incoming = QuantileSketch.from_dict(data)
                existing = self._sketches.get(name)
                if existing is None:
                    self._sketches[name] = incoming
                else:
                    existing.merge(incoming)

    def reset(self) -> None:
        """Drop all accumulated state (tests; listeners survive)."""
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._sketches = {}


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry singleton."""
    return _REGISTRY


def set_enabled(on: bool) -> bool:
    """Flip collection on/off process-wide; returns the previous state."""
    prev = _REGISTRY.enabled
    _REGISTRY.enabled = bool(on)
    return prev


class suspended:
    """Context manager disabling collection inside the block (used by
    the overhead bench to measure the no-registry baseline)."""

    def __enter__(self) -> "suspended":
        self._prev = set_enabled(False)
        return self

    def __exit__(self, *exc: Any) -> None:
        set_enabled(self._prev)
