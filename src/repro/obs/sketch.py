"""Log-bucketed quantile sketches: constant memory, mergeable, online.

The paper's guarantees are *shapes* over time: a constant-delay
enumerator's per-answer delay distribution must not move when ``||D||``
grows, while a linear-delay one's whole distribution shifts right by
orders of magnitude.  A fixed-width histogram blurs exactly that
distinction — either its buckets are microsecond-sized and a linear
plan saturates the overflow bucket, or they are millisecond-sized and
every constant-delay observation collapses into bucket zero.  A
*log-bucketed* sketch keeps constant **relative** resolution at every
scale: 60ns and 60ms land in buckets whose widths are both ~12% of the
value, so p99 read off the sketch is within ~6% of the true p99 at any
magnitude — good enough to distinguish O(1) from O(n) delay drift,
which spans decades, while using a few hundred integer cells total.

The bucketing is HDR-histogram style (log-linear): values below
``2^SUB_BITS`` are exact; above, each power-of-two octave is divided
into ``2^SUB_BITS`` equal sub-buckets.  Index arithmetic is a handful
of integer ops (``bit_length``, shifts) — no ``math.log`` — so the
sketch is cheap enough to sit on always-on paths.

Sketches **merge** by adding bucket counts, which is associative and
commutative: the driver can fold per-worker sketches shipped through
the parallel wave round-trips in any arrival order and always get the
same result (``tests/test_obs_registry.py`` checks order independence).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: sub-buckets per power-of-two octave (2^3 = 8): worst-case relative
#: bucket width 1/8, so a midpoint estimate is within ~6% of the value
SUB_BITS = 3

#: exemplars are retained only on the highest-index (largest-value)
#: buckets — the p99/p99.9 region a tail investigation starts from; a
#: bounded set keeps the per-add cost O(1) and the transport dicts small
EXEMPLAR_BUCKETS = 8

_SUB = 1 << SUB_BITS  # 8


def bucket_index(value: int) -> int:
    """The bucket of a non-negative integer value (typically ns)."""
    if value < _SUB:
        return value if value > 0 else 0
    shift = value.bit_length() - SUB_BITS - 1
    if shift <= 0:
        return value  # values in [SUB, 2*SUB) are still exact
    return ((shift + 1) << SUB_BITS) + ((value >> shift) & (_SUB - 1))


def bucket_bounds(index: int) -> Tuple[int, int]:
    """The half-open value range ``[lo, hi)`` covered by a bucket."""
    if index < 2 * _SUB:
        return index, index + 1
    shift = (index >> SUB_BITS) - 1
    sub = index & (_SUB - 1)
    lo = (_SUB + sub) << shift
    return lo, lo + (1 << shift)


class QuantileSketch:
    """An online quantile sketch over non-negative values.

    ``add(value, weight)`` is O(1); ``weight`` lets block-batched
    producers record one amortised observation per block (value = the
    per-answer share of the block gap, weight = answers in the block)
    instead of paying a clock call per answer.

    The sketch tracks the exact ``count`` (sum of weights), exact
    ``total`` (sum of value*weight — so means are exact, only
    quantiles are bucketed), and exact ``min``/``max``.
    """

    __slots__ = ("buckets", "count", "total", "min", "max", "exemplars")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        # bucket index -> (unix ts, trace_id, value): the most recent
        # traced observation that landed in that bucket, kept only for
        # the EXEMPLAR_BUCKETS highest buckets (the tail)
        self.exemplars: Dict[int, Tuple[float, str, int]] = {}

    def add(self, value: Any, weight: int = 1,
            trace_id: Optional[str] = None,
            ts: Optional[float] = None) -> None:
        """Record ``weight`` observations of ``value`` (clamped at 0).

        With a ``trace_id``, the observation also becomes the bucket's
        exemplar (newest wins), linking a tail quantile back to the
        request that produced it."""
        if weight <= 0:
            return
        v = int(value)
        if v < 0:
            v = 0
        idx = bucket_index(v)
        buckets = self.buckets
        buckets[idx] = buckets.get(idx, 0) + weight
        self.count += weight
        self.total += v * weight
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        if trace_id is not None:
            self._note_exemplar(idx, (ts if ts is not None else time.time(),
                                      trace_id, v))

    def _note_exemplar(self, idx: int,
                       entry: Tuple[float, str, int]) -> None:
        """Install ``entry`` as bucket ``idx``'s exemplar if it is newer
        than the current one (tuple order: timestamp first, so merges
        are order-independent), then trim to the tail buckets."""
        current = self.exemplars.get(idx)
        if current is None or entry > current:
            self.exemplars[idx] = entry
            if len(self.exemplars) > EXEMPLAR_BUCKETS:
                del self.exemplars[min(self.exemplars)]

    def exemplar(self, q: float) -> Optional[Tuple[float, str, int]]:
        """The ``(ts, trace_id, value)`` exemplar for the bucket holding
        quantile ``q``, or the nearest retained bucket at or above it —
        exemplars live only on the tail, so a p99 lookup resolves even
        when the p99 bucket itself saw no traced observation."""
        if not self.exemplars:
            return None
        if self.count:
            rank = min(self.count, max(1, int(q * self.count) + 1))
            seen = 0
            target = max(self.buckets) if self.buckets else 0
            for idx in sorted(self.buckets):
                seen += self.buckets[idx]
                if seen >= rank:
                    target = idx
                    break
            above = [i for i in self.exemplars if i >= target]
            if above:
                return self.exemplars[min(above)]
        return self.exemplars[max(self.exemplars)]

    # ------------------------------------------------------------- reading

    def quantile(self, q: float) -> float:
        """The approximate ``q``-quantile (q in [0, 1]); 0.0 when empty.

        Returns the midpoint of the bucket holding the q-th weighted
        observation, clamped into the exact observed [min, max] range."""
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return float(self.min or 0)
        rank = min(self.count, max(1, int(q * self.count) + 1))
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                lo, hi = bucket_bounds(idx)
                mid = (lo + hi - 1) / 2.0
                lo_clamp = float(self.min if self.min is not None else lo)
                hi_clamp = float(self.max if self.max is not None else mid)
                return min(max(mid, lo_clamp), hi_clamp)
        return float(self.max or 0)  # pragma: no cover - rank <= count

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, Any]:
        """JSON-able digest: count/sum/min/max plus the canonical
        p50/p95/p99/p99.9 the watchdog and dashboards consume."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }

    # ------------------------------------------------------------- merging

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (in place; returns self).

        Bucket addition is commutative and associative, so merging a
        set of sketches gives the same result in any order."""
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        # exemplar merge is newest-wins per bucket (timestamp-first tuple
        # comparison), so it is commutative like the bucket counts
        for idx, entry in other.exemplars.items():
            self._note_exemplar(idx, entry)
        return self

    def copy(self) -> "QuantileSketch":
        fresh = QuantileSketch()
        fresh.merge(self)
        return fresh

    def clear(self) -> None:
        self.buckets.clear()
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.exemplars.clear()

    # ----------------------------------------------------------- transport

    def to_dict(self) -> Dict[str, Any]:
        """Picklable/JSON-able form for cross-process transport (the
        parallel wave round-trips ship these)."""
        out: Dict[str, Any] = {
            "buckets": {str(k): v for k, v in self.buckets.items()},
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }
        if self.exemplars:
            out["exemplars"] = {str(k): list(v)
                                for k, v in self.exemplars.items()}
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QuantileSketch":
        sketch = cls()
        sketch.buckets = {int(k): int(v)
                          for k, v in data.get("buckets", {}).items()}
        sketch.count = int(data.get("count", 0))
        sketch.total = int(data.get("total", 0))
        sketch.min = data.get("min")
        sketch.max = data.get("max")
        sketch.exemplars = {
            int(k): (float(v[0]), str(v[1]), int(v[2]))
            for k, v in data.get("exemplars", {}).items()}
        return sketch

    @classmethod
    def merged(cls, sketches: Iterable["QuantileSketch"]) -> "QuantileSketch":
        out = cls()
        for s in sketches:
            out.merge(s)
        return out

    def __len__(self) -> int:
        return len(self.buckets)

    def __repr__(self) -> str:
        return (f"QuantileSketch(count={self.count}, "
                f"p50={self.quantile(0.5):.0f}, "
                f"p99={self.quantile(0.99):.0f}, buckets={len(self.buckets)})")
