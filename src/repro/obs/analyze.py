"""Estimated-vs-actual introspection: does a plan behave as classified?

``core/classify.py`` predicts a *shape* for every query — free-connex
ACQs enumerate with constant delay (Theorem 4.6), acyclic queries
preprocess in linear time (Theorem 4.2) — and the instrumented pipeline
records what actually happened: per-operator cardinalities and timings
on span attributes, per-answer delay in the registry sketch.  This
module runs a query under full instrumentation and lines the two up,
operator by operator:

* **materialise** — row counts must track ``||D||``; the phase's wall
  time must scale ~linearly when the instance doubles;
* **semijoin** (both reducer passes) — a semijoin filters its left
  input, so ``out <= in_left`` is an invariant, not an expectation;
* **full_reduce** — the preprocessing bound: wall time vs instance
  size across the two runs, against the classifier's verdict;
* **block.expand** (per join-tree level) — on fully reduced inputs
  every probe makes progress (the no-dead-end argument), so
  ``rows_out >= rows_in`` and ``enum.dead_ends`` must stay zero;
* **enumerate** — the delay class: a constant-delay plan's p99 must
  not move when ``||D||`` doubles, and recent ``guarantee.violation``
  events for this plan are surfaced against the offending operator.

Synthetic runs execute twice (``size`` and ``2 * size``) so the scale
checks have two points; with a user-supplied database only the
single-run invariants apply.  The output is a plain data dict
(:func:`analyze`), an ASCII table (:func:`render_text` — the ``repro
analyze`` subcommand), and an HTML panel
(:func:`repro.obs.report.render_analyze_html`).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro import obs
from repro.obs.sketch import QuantileSketch
from repro.obs.watchdog import plan_label

#: per-answer delays below this (ns) are scheduler/clock jitter — growth
#: factors computed on them say nothing about the plan
DELAY_FLOOR_NS = 10_000
#: phases faster than this (ns) are too small for scaling judgements
TIME_FLOOR_NS = 1_000_000
#: doubling ||D|| may grow a "linear" phase by up to 2x this factor
#: before we flag it (caches, allocator effects, warmup)
SCALE_SLACK = 3.0
#: a "constant-delay" p99 may grow by up to this factor across sizes
DELAY_SLACK = 4.0

OK = "ok"
FLAG = "FLAG"
INFO = "info"


# ------------------------------------------------------------------ running


def _synthetic_database(query: Any, size: int, seed: int):
    """A random database matching the query's relation schema."""
    from repro.data import generators
    from repro.logic.cq import ConjunctiveQuery
    from repro.logic.ucq import UnionOfConjunctiveQueries

    if isinstance(query, ConjunctiveQuery):
        disjuncts = [query]
    elif isinstance(query, UnionOfConjunctiveQueries):
        disjuncts = list(query.disjuncts)
    else:
        raise ValueError(
            "analyze needs an explicit database for this query class "
            "(synthetic data is only generated for CQs and UCQs)")
    schema: Dict[str, int] = {}
    for d in disjuncts:
        for atom in d.atoms:
            arity = schema.setdefault(atom.relation, atom.arity)
            if arity != atom.arity:
                raise ValueError(
                    f"relation {atom.relation} used with arities "
                    f"{arity} and {atom.arity}")
    return generators.random_database(schema, max(4, size // 4), size,
                                      seed=seed)


def _run_instrumented(query: Any, db: Any,
                      engine: Any = None) -> Dict[str, Any]:
    """One fully traced evaluation: span aggregates, answer count, wall
    time, and a private per-answer delay sketch (listener-fed, so the
    process-global sketch's history does not blur this run)."""
    from repro.core.planner import enumerate_answers

    registry = obs.registry()
    delays = QuantileSketch()

    def listener(gap_ns: int, answers: int) -> None:
        if answers > 0:
            delays.add(gap_ns // answers, answers)

    registry.add_delay_listener(listener)
    try:
        start = time.perf_counter_ns()
        with obs.capture() as tracer:
            answers = 0
            for _row in enumerate_answers(query, db, engine=engine):
                answers += 1
        wall_ns = time.perf_counter_ns() - start
    finally:
        registry.remove_delay_listener(listener)
    context = tracer.context
    return {
        "answers": answers,
        "wall_ns": wall_ns,
        "delays": delays,
        "spans": _aggregate_spans(tracer),
        "counters": dict(tracer.counters),
        "trace_id": context.trace_id if context is not None else None,
    }


def _aggregate_spans(tracer: Any) -> Dict[str, Dict[str, Any]]:
    """Group spans into operator buckets: total duration, call count,
    and the attribute dicts (cardinalities live there)."""
    agg: Dict[str, Dict[str, Any]] = {}
    for span in tracer.spans:
        key = span.name
        if span.name == "yannakakis.semijoin":
            key = f"semijoin[{span.attrs.get('phase', '?')}]"
        elif span.name == "parallel.reduce_step":
            key = f"semijoin[{span.attrs.get('phase', '?')}]"
        elif span.name == "block.expand":
            key = f"block.expand[level={span.attrs.get('level', '?')}]"
        entry = agg.setdefault(key, {"count": 0, "dur_ns": 0, "attrs": []})
        entry["count"] += 1
        entry["dur_ns"] += span.duration_ns
        entry["attrs"].append(span.attrs)
    return agg


# ------------------------------------------------------------------- checks


def _sum_attr(entry: Optional[Dict[str, Any]], key: str) -> int:
    if not entry:
        return 0
    return sum(int(a.get(key, 0)) for a in entry["attrs"]
               if isinstance(a.get(key), (int, float)))


def _scale_status(dur1: int, dur2: Optional[int],
                  factor: float) -> (str, str):
    """Judge a phase's growth when the instance doubled: returns
    (status, note).  INFO when there is no second run or the phase is
    below the timing noise floor."""
    if dur2 is None:
        return INFO, "single run (no scale check)"
    if max(dur1, dur2) < TIME_FLOOR_NS:
        return INFO, "below timing noise floor"
    if dur1 <= 0:
        return INFO, "first run not timed"
    # damp the ratio with the noise floor: millisecond-scale phases
    # swing several-x on cache/warmup effects alone, and a raw ratio
    # would flag them; a genuinely superlinear phase at real sizes
    # dwarfs the floor and keeps its ratio
    ratio = (dur2 + TIME_FLOOR_NS) / (dur1 + TIME_FLOOR_NS)
    if ratio > 2.0 * factor:
        return FLAG, f"time grew {ratio:.1f}x on a 2x instance"
    return OK, f"time grew {ratio:.1f}x on a 2x instance"


def analyze(query: Any, db: Any = None, *, size: int = 4000,
            seed: int = 0, engine: Any = None,
            scale: Optional[bool] = None) -> Dict[str, Any]:
    """Run ``query`` instrumented and compare actuals to expectations.

    With ``db=None`` a synthetic database of ``size`` tuples per
    relation is generated and — unless ``scale=False`` — the query also
    runs at ``2 * size`` so the linear/constant expectations have two
    points to compare.  Returns a JSON-able analysis dict; see
    :func:`render_text` for the human rendering.
    """
    from repro.core.classify import classify
    from repro.obs.fitting import expected_verdict

    if scale is None:
        scale = db is None
    if db is None:
        db = _synthetic_database(query, size, seed)
        db2 = _synthetic_database(query, 2 * size, seed) if scale else None
    else:
        try:
            size = sum(len(r) for r in db.relations())
        except (AttributeError, TypeError):
            pass
        db2 = None

    report = classify(query)
    try:
        expected_delay = expected_verdict(query, "delay")
        expected_prep = expected_verdict(query, "preprocessing")
    except ValueError:  # pragma: no cover - fixed metric kinds
        expected_delay = expected_prep = None

    run1 = _run_instrumented(query, db, engine=engine)
    run2 = _run_instrumented(query, db2, engine=engine) if db2 is not None \
        else None

    label = plan_label(query)
    from repro.obs.expose import event_log
    violations = [e for e in event_log().recent("guarantee.violation")
                  if e.get("plan") == label]

    rows: List[Dict[str, Any]] = []

    def row(operator: str, expected: str, actual: str, status: str,
            note: str = "") -> None:
        rows.append({"operator": operator, "expected": expected,
                     "actual": actual, "status": status, "note": note})

    spans1 = run1["spans"]
    spans2 = run2["spans"] if run2 else {}

    # materialise: linear in ||D||
    mat1 = spans1.get("yannakakis.materialise_atoms")
    if mat1:
        rows1 = _sum_attr(mat1, "rows")
        status, note = _scale_status(
            mat1["dur_ns"],
            spans2.get("yannakakis.materialise_atoms", {}).get("dur_ns")
            if run2 else None,
            SCALE_SLACK)
        row("materialise", "O(||D||) rows, linear time",
            f"{rows1} rows in {mat1['dur_ns'] / 1e6:.2f} ms", status, note)

    # semijoins: out <= in_left is an invariant of the operator
    for phase in ("bottom_up", "top_down"):
        key = f"semijoin[{phase}]"
        entry = spans1.get(key)
        if not entry:
            continue
        in_left = _sum_attr(entry, "in_left")
        out = _sum_attr(entry, "out")
        bad = [a for a in entry["attrs"]
               if isinstance(a.get("out"), (int, float))
               and isinstance(a.get("in_left"), (int, float))
               and a["out"] > a["in_left"]]
        status = FLAG if bad else OK
        note = (f"{len(bad)} step(s) grew their left input" if bad
                else f"{entry['count']} steps")
        row(key, "filter: out <= in_left",
            f"in {in_left} -> out {out}", status, note)

    # per-symbol work sharing: repeated-symbol queries should build each
    # (symbol, version) artefact once and coalesce identical reduction
    # passes — informational, the hit pattern depends on the query shape
    c1 = run1["counters"]
    ws_hits = c1.get("engine.symbol_workspace_hits", 0)
    ws_misses = c1.get("engine.symbol_workspace_misses", 0)
    coalesced = c1.get("yannakakis.coalesced_semijoins", 0)
    if ws_hits or ws_misses or coalesced:
        row("symbol_share", "one build per symbol per version",
            f"{ws_hits} hits / {ws_misses} misses, "
            f"{coalesced} coalesced semijoins",
            INFO, "shared per-symbol workspace "
            "(disable with REPRO_SYMBOL_SHARING=0)")

    # preprocessing (serial or parallel full reduce)
    for key in ("yannakakis.full_reduce", "parallel.full_reduce"):
        entry = spans1.get(key)
        if not entry:
            continue
        status, note = _scale_status(
            entry["dur_ns"],
            spans2.get(key, {}).get("dur_ns") if run2 else None,
            SCALE_SLACK)
        expected = expected_prep or "no claim"
        row(key, f"preprocessing: {expected}",
            f"{entry['dur_ns'] / 1e6:.2f} ms", status, note)

    # block expansion: no dead ends on reduced inputs
    levels = sorted(k for k in spans1 if k.startswith("block.expand["))
    for key in levels:
        entry = spans1[key]
        rows_in = _sum_attr(entry, "rows_in")
        rows_out = _sum_attr(entry, "rows_out")
        dead = [a for a in entry["attrs"]
                if isinstance(a.get("rows_out"), (int, float))
                and isinstance(a.get("rows_in"), (int, float))
                and a["rows_out"] < a["rows_in"]]
        status = FLAG if dead else OK
        note = (f"{len(dead)} probe(s) lost rows (dead ends)" if dead
                else f"{entry['count']} batch probes")
        row(key, "no dead ends: rows_out >= rows_in",
            f"in {rows_in} -> out {rows_out}", status, note)
    dead_ends = run1["counters"].get("enum.dead_ends", 0)
    if dead_ends:
        row("enum.dead_ends", "0 on fully reduced inputs",
            str(dead_ends), FLAG, "Theorem 4.6 invariant violated")

    # enumeration delay: the classifier's shape claim
    delays1: QuantileSketch = run1["delays"]
    p99_1 = delays1.quantile(0.99)
    expected = expected_delay or "no claim"
    status, note = INFO, ""
    actual = (f"p99 {p99_1 / 1e3:.1f} us over {run1['answers']} answers"
              if delays1.count else "no delay samples")
    if run2 is not None and delays1.count and run2["delays"].count:
        p99_2 = run2["delays"].quantile(0.99)
        if expected_delay == "constant-delay":
            if (p99_2 > DELAY_SLACK * max(p99_1, DELAY_FLOOR_NS)):
                status = FLAG
                note = (f"p99 grew {p99_2 / max(p99_1, 1):.1f}x on a 2x "
                        f"instance — constant-delay contract broken")
            else:
                status, note = OK, (
                    f"p99 stable across sizes "
                    f"({p99_1 / 1e3:.1f} -> {p99_2 / 1e3:.1f} us)")
        else:
            status, note = INFO, (
                f"p99 {p99_1 / 1e3:.1f} -> {p99_2 / 1e3:.1f} us "
                f"(no constant-delay claim)")
    if violations:
        status = FLAG
        note = (f"{len(violations)} guarantee.violation event(s) for "
                f"this plan" + (f"; {note}" if note else ""))
    row("enumerate", f"delay: {expected}", actual, status, note)

    return {
        "query": str(query),
        "plan": label,
        "query_class": report.query_class,
        "facts": {k: report.facts[k]
                  for k in ("acyclic", "free_connex")
                  if k in report.facts},
        "expected": {"delay": expected_delay,
                     "preprocessing": expected_prep},
        "sizes": [size] + ([2 * size] if run2 is not None else []),
        "answers": [run1["answers"]] + (
            [run2["answers"]] if run2 is not None else []),
        "wall_ns": [run1["wall_ns"]] + (
            [run2["wall_ns"]] if run2 is not None else []),
        "trace_ids": [t for t in (
            run1["trace_id"], run2["trace_id"] if run2 else None) if t],
        "violations": violations,
        "rows": rows,
        "flagged": [r["operator"] for r in rows if r["status"] == FLAG],
    }


# ---------------------------------------------------------------- rendering


def render_text(analysis: Dict[str, Any]) -> str:
    """The ``repro analyze`` ASCII table."""
    lines = [f"query:  {analysis['query']}",
             f"class:  {analysis['query_class']}"
             + "".join(f", {k}={v}" for k, v in analysis["facts"].items()),
             "sizes:  " + " -> ".join(str(s) for s in analysis["sizes"])
             + "   answers: "
             + " -> ".join(str(a) for a in analysis["answers"])]
    if analysis["trace_ids"]:
        lines.append("traces: " + ", ".join(analysis["trace_ids"]))
    lines.append("")
    headers = ("operator", "expected", "actual", "status", "note")
    table = [headers] + [
        (r["operator"], r["expected"], r["actual"], r["status"], r["note"])
        for r in analysis["rows"]]
    widths = [max(len(str(row[i])) for row in table)
              for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    for i, row in enumerate(table):
        lines.append(" | ".join(str(c).ljust(w)
                                for c, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append(sep)
    flagged = analysis["flagged"]
    lines.append("")
    if flagged:
        lines.append(f"FLAGGED: {', '.join(flagged)} — actuals contradict "
                     f"the predicted class")
    else:
        lines.append("all operators within their predicted class")
    return "\n".join(lines)
