"""Structured tracing core: nested spans, counters and gauges.

A :class:`Tracer` records *spans* (named, attributed wall-clock
intervals, nested by dynamic scope), *counters* (monotonically
accumulated event tallies — kernel invocations, rows probed, blocks
emitted, cache hits) and *gauges* (last-written values — dictionary
sizes, the calibrated timer overhead).  Spans are timed with
:func:`time.perf_counter_ns`, the same clock — and therefore the same
measured floor, see :func:`repro.perf.delay.timer_overhead_ns` — as the
delay-measurement harness, so a trace and a delay profile of the same
run are directly comparable.

The disabled state is a :class:`NullTracer` singleton whose ``span`` /
``count`` / ``gauge`` are allocation-free no-ops: one attribute check
and at most one trivial call per instrumentation site, cheap enough to
leave the instrumentation on permanently in library code (the bound is
benchmarked in ``benchmarks/test_bench_obs_overhead.py``).

Span begin/end tolerates out-of-order ends: interleaved generators (the
UCQ round-robin) may close their enumeration spans in any order, so
ending a span removes it from the ambient stack wherever it sits
instead of assuming strict LIFO.  Nesting is decided at *begin* time
(the parent is whatever tops the current thread's stack), which is
exactly the dynamic-scope semantics the explain tree renders.
"""

from __future__ import annotations

import itertools
import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: head-sampling knob: fraction of new trace contexts that are sampled
#: (stamped onto spans, exported as exemplars).  Applied once at context
#: creation — a request is either fully traced or fully unsampled, so a
#: sampled trace is never missing interior spans.
SAMPLE_ENV_VAR = "REPRO_TRACE_SAMPLE"


def sample_rate() -> float:
    """The configured head-sampling rate, clamped into ``[0, 1]``.

    Unset or unparsable values mean 1.0 (sample everything): tracing is
    opt-in to begin with, so the knob only ever *reduces* volume."""
    raw = os.environ.get(SAMPLE_ENV_VAR)
    if not raw:
        return 1.0
    try:
        rate = float(raw)
    except ValueError:
        return 1.0
    return min(1.0, max(0.0, rate))


class TraceContext:
    """Identity of one request's trace: W3C-style ids, explicit sampling.

    ``trace_id`` names the whole request tree; ``span_id`` is the id of
    the *current* span (the propagation parent for remote children);
    ``parent_id`` is that span's own parent, kept so a revived context
    can be inspected.  ``sampled`` is the head-sampling decision, made
    once in :meth:`new` and carried — never re-rolled — across every
    propagation hop, so a request's spans are all-or-nothing."""

    __slots__ = ("trace_id", "span_id", "parent_id", "sampled")

    def __init__(self, trace_id: str, span_id: Optional[str] = None,
                 parent_id: Optional[str] = None, sampled: bool = True):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = sampled

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context with the head-sampling decision rolled."""
        trace_id = f"{random.getrandbits(64):016x}"
        rate = sample_rate()
        sampled = rate >= 1.0 or random.random() < rate
        return cls(trace_id, sampled=sampled)

    def at(self, span_id: Optional[str]) -> "TraceContext":
        """This trace positioned at ``span_id`` — what a child (local
        thread or remote worker) should treat as its parent."""
        return TraceContext(self.trace_id, span_id, self.span_id,
                            self.sampled)

    def to_dict(self) -> Dict[str, Any]:
        """Wire format for cross-process propagation (queue payloads)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id, "sampled": self.sampled}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceContext":
        return cls(data["trace_id"], data.get("span_id"),
                   data.get("parent_id"), bool(data.get("sampled", True)))

    def __repr__(self) -> str:
        return (f"TraceContext({self.trace_id}, span={self.span_id}, "
                f"sampled={self.sampled})")


# Ambient (thread-local) context: lets code far from the tracer — the
# registry recording a delay exemplar, the watchdog naming a violation —
# find the current request's trace_id without threading it through every
# call signature.
_AMBIENT = threading.local()


def current_context() -> Optional[TraceContext]:
    """The thread's active trace context, or ``None`` outside a request."""
    return getattr(_AMBIENT, "ctx", None)


def current_trace_id() -> Optional[str]:
    """The active *sampled* trace id — ``None`` when there is no context
    or head sampling dropped it (unsampled requests must not leak ids
    into exemplars that cannot resolve to a retained trace)."""
    ctx = getattr(_AMBIENT, "ctx", None)
    if ctx is None or not ctx.sampled:
        return None
    return ctx.trace_id


def activate_context(ctx: Optional[TraceContext]) -> Optional[TraceContext]:
    """Install ``ctx`` as the thread's ambient context; returns the
    previous one so callers can restore it."""
    prev = getattr(_AMBIENT, "ctx", None)
    _AMBIENT.ctx = ctx
    return prev


@contextmanager
def scoped_context(ctx: Optional[TraceContext]) -> Iterator[
        Optional[TraceContext]]:
    """Activate ``ctx`` for the duration of the block, then restore."""
    prev = activate_context(ctx)
    try:
        yield ctx
    finally:
        activate_context(prev)


class Span:
    """One timed region: name, ``perf_counter_ns`` bounds, attributes,
    children (spans begun while this one topped the stack).

    ``pid`` is None for spans recorded in-process; spans adopted from a
    pool worker (:meth:`Tracer.adopt`) carry the worker's pid so the
    Chrome export lays them out on separate process tracks.  On Linux
    ``perf_counter_ns`` is CLOCK_MONOTONIC — system-wide, not
    per-process — so worker timestamps are directly comparable with the
    driver's epoch."""

    __slots__ = ("name", "start_ns", "end_ns", "attrs", "children", "tid",
                 "pid", "trace_id", "span_id", "parent_id")

    def __init__(self, name: str, start_ns: int, tid: int,
                 pid: Optional[int] = None):
        self.name = name
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.attrs: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self.tid = tid
        self.pid = pid
        # request identity, stamped by the tracer when its context is
        # sampled; None on unsampled / context-free spans
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (0 while the span is still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute (cardinalities, level numbers, ...)."""
        self.attrs[key] = value

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration_ns / 1e6:.3f}ms, "
                f"attrs={self.attrs})")


class _SpanContext:
    """The context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._begin(self._name, self._attrs)
        return self._span

    def __exit__(self, *exc: Any) -> bool:
        self._tracer._end(self._span)
        return False


class Tracer:
    """A live trace: span tree + counters + gauges.

    Thread-safe: each thread keeps its own span stack (nesting is per
    thread, like Chrome's per-``tid`` tracks), while the finished-span
    list, counters and gauges share one lock.  ``events`` tallies every
    recorded instrumentation event (span begins, counter and gauge
    writes) — the overhead benchmark multiplies it by the measured
    null-call cost to bound the disabled path's tax.
    """

    enabled = True

    #: sentinel distinguishing "no context argument" (mint a fresh one)
    #: from an explicit ``context=None`` (trace without request identity)
    _NEW = object()

    def __init__(self, context: Any = _NEW) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self.epoch_ns = time.perf_counter_ns()
        self.roots: List[Span] = []
        self.spans: List[Span] = []  # every span, in begin order
        self.counters: Dict[str, Any] = {}
        self.gauges: Dict[str, Any] = {}
        self.events = 0
        if context is Tracer._NEW:
            context = TraceContext.new()
        self.context: Optional[TraceContext] = context
        # span_id -> span, for grafting adopted worker spans under the
        # driver span whose propagated context they carried
        self._by_id: Dict[str, Span] = {}
        # cheap per-tracer span ids: pid prefix guarantees uniqueness
        # across pool workers, the counter within the process
        self._id_prefix = f"{os.getpid() & 0xffffff:x}"
        self._id_seq = itertools.count(1)

    # ------------------------------------------------------------------ spans

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """A context manager timing one named region::

            with tracer.span("yannakakis.semijoin", node=3) as sp:
                ...
                sp.set("out", len(result))
        """
        return _SpanContext(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _begin(self, name: str, attrs: Dict[str, Any]) -> Span:
        span = Span(name, time.perf_counter_ns(), threading.get_ident())
        if attrs:
            span.attrs.update(attrs)
        stack = self._stack()
        parent = stack[-1] if stack else None
        ctx = self.context
        if ctx is not None and ctx.sampled:
            span.trace_id = ctx.trace_id
            span.span_id = f"{self._id_prefix}-{next(self._id_seq):x}"
            # a root span's parent is the propagated remote parent (the
            # driver span whose context reached this tracer), if any
            span.parent_id = (parent.span_id if parent is not None
                              else ctx.span_id)
        with self._lock:
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
            self.spans.append(span)
            if span.span_id is not None:
                self._by_id[span.span_id] = span
            self.events += 1
        stack.append(span)
        return span

    def _end(self, span: Optional[Span]) -> None:
        if span is None:  # pragma: no cover - __exit__ without __enter__
            return
        span.end_ns = time.perf_counter_ns()
        stack = self._stack()
        # tolerate out-of-order ends from interleaved generators: remove
        # the span wherever it sits instead of requiring LIFO order
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is span:
                del stack[i]
                break

    def adopt(self, span: Span) -> None:
        """Graft a *completed* foreign span tree into this trace.

        The parallel layer rebuilds worker spans driver-side (with their
        worker ``pid``) and adopts them, so one trace — and one Chrome
        export — covers the whole fan-out.  When the foreign root's
        ``parent_id`` names a span of *this* trace (the driver span
        whose propagated :class:`TraceContext` the worker received), it
        is grafted as that span's child and the worker's subtree joins
        the request tree; otherwise it lands as an extra root, the
        pre-propagation behaviour.  The span and all its descendants
        enter the flat ``spans`` list; nothing is pushed on any thread's
        live stack (the foreign work is already finished)."""
        with self._lock:
            parent = (self._by_id.get(span.parent_id)
                      if span.parent_id is not None else None)
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
            stack = [span]
            while stack:
                s = stack.pop()
                self.spans.append(s)
                if s.span_id is not None:
                    self._by_id.setdefault(s.span_id, s)
                self.events += 1
                stack.extend(s.children)

    def propagation_context(self) -> Optional[TraceContext]:
        """The context to hand a child of the *current* span — this
        trace positioned at whatever span tops the calling thread's
        stack (or at the context's own position when no span is open).
        ``None`` when the tracer has no request identity."""
        ctx = self.context
        if ctx is None:
            return None
        stack = self._stack()
        if stack:
            return ctx.at(stack[-1].span_id)
        return ctx

    # -------------------------------------------------------- counters/gauges

    def count(self, name: str, n: Any = 1) -> None:
        """Accumulate ``n`` onto the named counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n
            self.events += 1

    def gauge(self, name: str, value: Any) -> None:
        """Record the latest value of the named gauge."""
        with self._lock:
            self.gauges[name] = value
            self.events += 1

    # ------------------------------------------------------------------ misc

    def elapsed_ns(self) -> int:
        return time.perf_counter_ns() - self.epoch_ns


class _NullSpan:
    """The span handed out while tracing is disabled: ignores writes."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}
    children: List[Span] = []
    start_ns = end_ns = 0
    duration_ns = 0
    pid = None
    tid = 0
    trace_id = span_id = parent_id = None

    def set(self, key: str, value: Any) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: Any) -> bool:
        return False


class NullTracer:
    """The disabled tracer: every operation is a stateless no-op.

    A single shared instance backs the whole process when tracing is
    off; ``span`` returns one shared, re-entrant context manager, so the
    disabled path allocates nothing.
    """

    enabled = False

    def __init__(self) -> None:
        # empty read-only views so metrics/export code needs no special case
        self.roots: List[Span] = []
        self.spans: List[Span] = []
        self.counters: Dict[str, Any] = {}
        self.gauges: Dict[str, Any] = {}
        self.events = 0
        self.epoch_ns = 0
        self.context: Optional[TraceContext] = None

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return NULL_SPAN_CONTEXT

    def count(self, name: str, n: Any = 1) -> None:
        pass

    def gauge(self, name: str, value: Any) -> None:
        pass

    def elapsed_ns(self) -> int:
        return 0

    def propagation_context(self) -> Optional[TraceContext]:
        return None


NULL_SPAN = _NullSpan()
NULL_SPAN_CONTEXT = _NullSpanContext()
NULL_TRACER = NullTracer()
