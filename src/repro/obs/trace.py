"""Structured tracing core: nested spans, counters and gauges.

A :class:`Tracer` records *spans* (named, attributed wall-clock
intervals, nested by dynamic scope), *counters* (monotonically
accumulated event tallies — kernel invocations, rows probed, blocks
emitted, cache hits) and *gauges* (last-written values — dictionary
sizes, the calibrated timer overhead).  Spans are timed with
:func:`time.perf_counter_ns`, the same clock — and therefore the same
measured floor, see :func:`repro.perf.delay.timer_overhead_ns` — as the
delay-measurement harness, so a trace and a delay profile of the same
run are directly comparable.

The disabled state is a :class:`NullTracer` singleton whose ``span`` /
``count`` / ``gauge`` are allocation-free no-ops: one attribute check
and at most one trivial call per instrumentation site, cheap enough to
leave the instrumentation on permanently in library code (the bound is
benchmarked in ``benchmarks/test_bench_obs_overhead.py``).

Span begin/end tolerates out-of-order ends: interleaved generators (the
UCQ round-robin) may close their enumeration spans in any order, so
ending a span removes it from the ambient stack wherever it sits
instead of assuming strict LIFO.  Nesting is decided at *begin* time
(the parent is whatever tops the current thread's stack), which is
exactly the dynamic-scope semantics the explain tree renders.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional


class Span:
    """One timed region: name, ``perf_counter_ns`` bounds, attributes,
    children (spans begun while this one topped the stack).

    ``pid`` is None for spans recorded in-process; spans adopted from a
    pool worker (:meth:`Tracer.adopt`) carry the worker's pid so the
    Chrome export lays them out on separate process tracks.  On Linux
    ``perf_counter_ns`` is CLOCK_MONOTONIC — system-wide, not
    per-process — so worker timestamps are directly comparable with the
    driver's epoch."""

    __slots__ = ("name", "start_ns", "end_ns", "attrs", "children", "tid",
                 "pid")

    def __init__(self, name: str, start_ns: int, tid: int,
                 pid: Optional[int] = None):
        self.name = name
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.attrs: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self.tid = tid
        self.pid = pid

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (0 while the span is still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute (cardinalities, level numbers, ...)."""
        self.attrs[key] = value

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration_ns / 1e6:.3f}ms, "
                f"attrs={self.attrs})")


class _SpanContext:
    """The context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._begin(self._name, self._attrs)
        return self._span

    def __exit__(self, *exc: Any) -> bool:
        self._tracer._end(self._span)
        return False


class Tracer:
    """A live trace: span tree + counters + gauges.

    Thread-safe: each thread keeps its own span stack (nesting is per
    thread, like Chrome's per-``tid`` tracks), while the finished-span
    list, counters and gauges share one lock.  ``events`` tallies every
    recorded instrumentation event (span begins, counter and gauge
    writes) — the overhead benchmark multiplies it by the measured
    null-call cost to bound the disabled path's tax.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self.epoch_ns = time.perf_counter_ns()
        self.roots: List[Span] = []
        self.spans: List[Span] = []  # every span, in begin order
        self.counters: Dict[str, Any] = {}
        self.gauges: Dict[str, Any] = {}
        self.events = 0

    # ------------------------------------------------------------------ spans

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """A context manager timing one named region::

            with tracer.span("yannakakis.semijoin", node=3) as sp:
                ...
                sp.set("out", len(result))
        """
        return _SpanContext(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _begin(self, name: str, attrs: Dict[str, Any]) -> Span:
        span = Span(name, time.perf_counter_ns(), threading.get_ident())
        if attrs:
            span.attrs.update(attrs)
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
            self.spans.append(span)
            self.events += 1
        stack.append(span)
        return span

    def _end(self, span: Optional[Span]) -> None:
        if span is None:  # pragma: no cover - __exit__ without __enter__
            return
        span.end_ns = time.perf_counter_ns()
        stack = self._stack()
        # tolerate out-of-order ends from interleaved generators: remove
        # the span wherever it sits instead of requiring LIFO order
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is span:
                del stack[i]
                break

    def adopt(self, span: Span) -> None:
        """Graft a *completed* foreign span tree into this trace.

        The parallel layer rebuilds worker spans driver-side (with their
        worker ``pid``) and adopts them as extra roots, so one trace —
        and one Chrome export — covers the whole fan-out.  The span and
        all its descendants enter the flat ``spans`` list; nothing is
        pushed on any thread's live stack (the foreign work is already
        finished)."""
        with self._lock:
            self.roots.append(span)
            stack = [span]
            while stack:
                s = stack.pop()
                self.spans.append(s)
                self.events += 1
                stack.extend(s.children)

    # -------------------------------------------------------- counters/gauges

    def count(self, name: str, n: Any = 1) -> None:
        """Accumulate ``n`` onto the named counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n
            self.events += 1

    def gauge(self, name: str, value: Any) -> None:
        """Record the latest value of the named gauge."""
        with self._lock:
            self.gauges[name] = value
            self.events += 1

    # ------------------------------------------------------------------ misc

    def elapsed_ns(self) -> int:
        return time.perf_counter_ns() - self.epoch_ns


class _NullSpan:
    """The span handed out while tracing is disabled: ignores writes."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}
    children: List[Span] = []
    start_ns = end_ns = 0
    duration_ns = 0
    pid = None
    tid = 0

    def set(self, key: str, value: Any) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: Any) -> bool:
        return False


class NullTracer:
    """The disabled tracer: every operation is a stateless no-op.

    A single shared instance backs the whole process when tracing is
    off; ``span`` returns one shared, re-entrant context manager, so the
    disabled path allocates nothing.
    """

    enabled = False

    def __init__(self) -> None:
        # empty read-only views so metrics/export code needs no special case
        self.roots: List[Span] = []
        self.spans: List[Span] = []
        self.counters: Dict[str, Any] = {}
        self.gauges: Dict[str, Any] = {}
        self.events = 0
        self.epoch_ns = 0

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return NULL_SPAN_CONTEXT

    def count(self, name: str, n: Any = 1) -> None:
        pass

    def gauge(self, name: str, value: Any) -> None:
        pass

    def elapsed_ns(self) -> int:
        return 0


NULL_SPAN = _NullSpan()
NULL_SPAN_CONTEXT = _NullSpanContext()
NULL_TRACER = NullTracer()
