"""Linear-delay enumeration of arbitrary ACQs — Algorithm 2 (Theorem 4.3).

The recursion of the paper's Algorithm 2: with head (x_1, ..., x_p),

* compute the values ``a`` of x_1 occurring in answers — after a full
  semijoin reduction these are exactly the x_1-projections of any reduced
  atom containing x_1 (one linear pass);
* for each such ``a``, recurse on phi_a = phi(a, x_2, ..., x_p), the query
  with x_1 instantiated (still acyclic: instantiating deletes a vertex
  from every hyperedge, and vertex deletion preserves alpha-acyclicity —
  take a join tree and erase the vertex from every node label).

Each recursion level costs one full reduction, i.e. O(||phi|| * ||D||)
work between consecutive answers: *linear-time delay*, the bound of
Theorem 4.3.  The benchmark suite contrasts this growing delay with the
flat delay of the free-connex engine.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro import obs
from repro.data.database import Database
from repro.enumeration.base import Answer, Enumerator
from repro.errors import NotAcyclicError, UnsupportedQueryError
from repro.eval.yannakakis import full_reducer
from repro.logic.cq import ConjunctiveQuery


def _head_variable_values(cq: ConjunctiveQuery, db: Database,
                          engine=None) -> List[Any]:
    """Values of the first head variable occurring in some answer.

    One full reduction; afterwards every tuple of every atom extends to a
    satisfying assignment, so projecting any atom containing x_1 yields
    exactly the answer values of x_1.
    """
    x1 = cq.head[0]
    obs.count("acq_linear.reductions")
    _tree, reduced = full_reducer(cq, db, engine=engine)
    for i, atom in enumerate(cq.atoms):
        if x1 in atom.variable_set():
            return [t[0] for t in reduced[i].project((x1,))]
    raise UnsupportedQueryError(f"head variable {x1!r} occurs in no atom of {cq!r}")


class LinearDelayACQEnumerator(Enumerator):
    """Algorithm 2: enumerate any acyclic CQ with linear-time delay."""

    def __init__(self, cq: ConjunctiveQuery, db: Database, engine=None):
        super().__init__()
        if cq.has_comparisons():
            raise UnsupportedQueryError(
                "Algorithm 2 handles pure ACQs; use the disequality engine "
                "for comparison atoms"
            )
        if not cq.is_acyclic():
            raise NotAcyclicError(f"query {cq!r} is not acyclic")
        self.cq = cq
        self.db = db
        self.engine = engine
        self._first_values: List[Any] = []

    def _preprocess(self) -> None:
        if not self.cq.is_boolean():
            self._first_values = _head_variable_values(self.cq, self.db,
                                                       engine=self.engine)

    def _enumerate(self) -> Iterator[Answer]:
        cq, db = self.cq, self.db
        if cq.is_boolean():
            from repro.eval.yannakakis import yannakakis_boolean

            if yannakakis_boolean(cq, db):
                yield ()
            return
        yield from self._enumerate_from(cq, self._first_values)

    def _enumerate_from(self, cq: ConjunctiveQuery, values: List[Any]
                        ) -> Iterator[Answer]:
        if cq.arity == 1:
            for a in values:
                yield (a,)
            return
        x1 = cq.head[0]
        for a in values:
            sub = cq.substitute({x1: a})
            sub_values = _head_variable_values(sub, self.db,
                                               engine=self.engine)
            for rest in self._enumerate_from(sub, sub_values):
                yield (a,) + rest
