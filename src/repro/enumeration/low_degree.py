"""First-order queries over low-degree structures (Section 3.2,
Theorems 3.9 and 3.10).

A class has *low degree* (Definition 3.8) when degrees are eventually
below |G|^epsilon for every epsilon > 0 — e.g. graphs of degree
O(log n), such as the clique-plus-independent-set family of Section 3.2
(:func:`repro.data.generators.clique_plus_independent`).

The anchored local-pattern engine of
:mod:`repro.enumeration.bounded_degree` is exactly what these theorems
need: on a structure of degree d each anchor seed explores at most
d^{O(||phi||)} candidates, so

* model checking and counting run in O(||D|| * d^{O(||phi||)}) =
  O(||D||^{1 + O(epsilon)}) — *pseudo-linear* time (Theorem 3.9);
* the per-component match lists have pseudo-linear total size, after
  which enumeration proceeds with data-independent delay exactly as in
  the bounded-degree case (Theorem 3.10: constant delay after
  pseudo-linear preprocessing).

This module packages that reading: same algorithms, different
preprocessing-cost accounting, plus the degree diagnostics used by the
benchmarks to verify the pseudo-linear claim empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.data.database import Database
from repro.enumeration.bounded_degree import (
    BoundedDegreeEnumerator,
    Pattern,
    count_pattern,
    model_check_pattern,
)


class LowDegreeEnumerator(BoundedDegreeEnumerator):
    """Theorem 3.10: constant-delay enumeration after *pseudo-linear*
    preprocessing on low-degree classes.

    The algorithm is the anchored engine; only the cost analysis changes:
    preprocessing is O(||D|| * deg(D)^{O(||phi||)}), which is
    ||D||^{1+O(epsilon)} on a low-degree class.  The enumeration phase
    never touches the database again, so its delay is identical to the
    bounded-degree case.
    """


def decide_low_degree(pattern: Pattern, db: Database) -> bool:
    """Theorem 3.9: pseudo-linear model checking on low-degree classes."""
    return model_check_pattern(pattern, db)


def count_low_degree(pattern: Pattern, db: Database) -> int:
    """Counting analogue on low-degree classes (same engine)."""
    return count_pattern(pattern, db)


@dataclass
class DegreeProfile:
    """Degree diagnostics supporting the low-degree claim on an instance."""

    size: int
    degree: int
    epsilon_witness: float

    @classmethod
    def of(cls, db: Database) -> "DegreeProfile":
        import math

        n = max(db.domain_size(), 2)
        d = max(db.degree(), 1)
        return cls(size=n, degree=d, epsilon_witness=math.log(d, n))

    def is_low_degree_like(self, epsilon: float = 0.5) -> bool:
        """deg(D) <= |D|^epsilon on this instance."""
        return self.epsilon_witness <= epsilon
