"""Enumeration of unions of conjunctive queries (Section 4.2, Theorem 4.13).

The tractable case: every disjunct admits a *free-connex union extension*
(Definition 4.12).  The engine then

1. finds, per disjunct, a free-connex extension phi_i^+ with fresh atoms
   P_j(V_j) whose variables are provided by other disjuncts
   (:mod:`repro.hypergraph.unionext`);
2. materialises each P_j: the provider phi_j is S-connex for the relevant
   S <= free(phi_j), so the projection pi_S(phi_j(D)) is itself a
   free-connex query, enumerated by the constant-delay engine and
   transported along the body homomorphism h (coordinates with several
   h-preimages contribute only when the preimages agree — disagreeing
   projections correspond to no answer of the target and are never
   needed);
3. enumerates each extended (free-connex!) disjunct with the
   constant-delay engine, interleaving disjuncts round-robin and skipping
   duplicates with a hash set.

Each answer is produced by at most k = #disjuncts streams, so the
interleaved delay is O(k) enumeration steps per fresh answer: constant
*amortised* delay.  (The paper's Constant-Delay_lin definition restricts
extra memory to query-size; the duplicate set here uses output-size
memory — the standard practical relaxation, also used by [22]'s
Cheater's-Lemma-based variants.  EXPERIMENTS.md records this deviation.)
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro import obs
from repro.data.database import Database
from repro.data.relation import Relation
from repro.enumeration.base import Answer, Enumerator
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.errors import NotFreeConnexError, UnsupportedQueryError
from repro.hypergraph.unionext import (
    DisjunctExtension,
    ProvidedSet,
    union_extension_plan,
)
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable
from repro.logic.ucq import UnionOfConjunctiveQueries


def _materialise_provided(db: Database, ucq: UnionOfConjunctiveQueries,
                          prov: ProvidedSet,
                          provider_query=None, engine=None,
                          block_size: Optional[int] = None) -> Relation:
    """The fresh relation interpreting P(prov.variables).

    Contents: for each answer of the provider projected onto S (computed
    by the free-connex engine — the provider is S-connex, so the S-headed
    body is free-connex), transport values along h onto prov.variables.

    ``provider_query`` overrides the original disjunct when the provided
    set comes from a resolved union *extension* (Definition 4.12's
    recursive clause); ``db`` must then already hold that extension's
    fresh relations.
    """
    with obs.span("ucq.materialise_provided", provider=prov.provider_index):
        return _materialise_provided_impl(
            db, ucq, prov, provider_query=provider_query, engine=engine,
            block_size=block_size)


def _materialise_provided_impl(db: Database, ucq: UnionOfConjunctiveQueries,
                               prov: ProvidedSet,
                               provider_query=None, engine=None,
                               block_size: Optional[int] = None) -> Relation:
    provider = provider_query if provider_query is not None \
        else ucq.disjuncts[prov.provider_index]
    hom = prov.hom_dict()
    s_ordered = tuple(sorted(prov.s_vars, key=lambda v: v.name))
    s_query = provider.with_head(s_ordered)
    enum = FreeConnexEnumerator(s_query, db, engine=engine,
                                block_size=block_size)
    # for each output coordinate, the provider variables mapping onto it
    preimages: List[Tuple[int, ...]] = []
    for v in prov.variables:
        idxs = tuple(i for i, u in enumerate(s_ordered) if hom[u] is v)
        if not idxs:
            raise UnsupportedQueryError(
                f"provided variable {v!r} has no preimage in S — invalid plan"
            )
        preimages.append(idxs)
    rel = Relation(f"__prov_{prov.provider_index}", len(prov.variables))
    for tup in enum:
        out: List[Any] = []
        ok = True
        for idxs in preimages:
            vals = {tup[i] for i in idxs}
            if len(vals) != 1:
                ok = False
                break
            out.append(tup[idxs[0]])
        if ok:
            rel.add(tuple(out))
    return rel


class UCQEnumerator(Enumerator):
    """Round-robin, deduplicated enumeration of a UCQ whose disjuncts all
    admit free-connex union extensions."""

    def __init__(self, ucq: UnionOfConjunctiveQueries, db: Database,
                 engine=None, block_size: Optional[int] = None):
        super().__init__()
        self.ucq = ucq
        self.db = db
        self.engine = engine
        self.block_size = block_size
        self._streams: List[Iterator[Answer]] = []

    def _preprocess(self) -> None:
        plan = union_extension_plan(self.ucq)
        if plan is None:
            raise NotFreeConnexError(
                f"{self.ucq!r} has a disjunct with no free-connex union "
                "extension; constant-delay enumeration is not known for it"
            )
        self._streams = []
        # one shared database accumulating every fresh relation; resolve in
        # rank order so a recursive provider's fresh relations exist before
        # its consumers need them (Definition 4.12's recursion)
        shared_db = self.db.copy()
        enumerators = [None] * len(plan)
        for ext_index in sorted(range(len(plan)), key=lambda i: plan[i].rank):
            ext = plan[ext_index]
            for name, prov in ext.fresh.items():
                provider_query = None
                if prov.from_extension:
                    provider_query = plan[prov.provider_index].extended
                rel = _materialise_provided(shared_db, self.ucq, prov,
                                            provider_query=provider_query,
                                            engine=self.engine,
                                            block_size=self.block_size)
                rel.name = name
                shared_db.add_relation(rel)
            enum = FreeConnexEnumerator(ext.extended, shared_db,
                                        engine=self.engine,
                                        block_size=self.block_size)
            enum.preprocess()
            enumerators[ext_index] = enum
        self._streams = [e._enumerate() for e in enumerators]

    def _enumerate(self) -> Iterator[Answer]:
        seen: Set[Answer] = set()
        streams = list(self._streams)
        while streams:
            alive: List[Iterator[Answer]] = []
            for stream in streams:
                try:
                    tup = next(stream)
                except StopIteration:
                    continue
                alive.append(stream)
                if tup not in seen:
                    seen.add(tup)
                    yield tup
                else:
                    obs.count("ucq.duplicates_skipped")
            streams = alive


class MaterialisedUnionEnumerator(Enumerator):
    """Baseline: evaluate every disjunct to completion (via Yannakakis or
    naive), union the sets, then emit — correct for any UCQ, used as the
    ablation baseline A3 and the fallback for intractable unions."""

    def __init__(self, ucq: UnionOfConjunctiveQueries, db: Database):
        super().__init__()
        self.ucq = ucq
        self.db = db
        self._answers: List[Answer] = []

    def _preprocess(self) -> None:
        from repro.eval.naive import evaluate_cq_naive
        from repro.eval.yannakakis import acyclic_answers

        union: Set[Answer] = set()
        for d in self.ucq.disjuncts:
            if not d.has_comparisons() and d.is_acyclic():
                union |= acyclic_answers(d, self.db)
            else:
                union |= evaluate_cq_naive(d, self.db)
        self._answers = sorted(union, key=repr)

    def _enumerate(self) -> Iterator[Answer]:
        yield from self._answers


def enumerate_ucq(ucq: UnionOfConjunctiveQueries, db: Database,
                  engine=None,
                  block_size: Optional[int] = None) -> Enumerator:
    """Best applicable engine for a UCQ."""
    try:
        enum = UCQEnumerator(ucq, db, engine=engine, block_size=block_size)
        enum.preprocess()
        return enum
    except (NotFreeConnexError, UnsupportedQueryError):
        return MaterialisedUnionEnumerator(ucq, db)
