"""Covers of tables (Definitions 4.16-4.19) — the combinatorial core of
quantifier elimination in the presence of disequalities (Section 4.3).

A *table* is a pair (E, f) with E a finite set and f = (f_1, ..., f_k) a
tuple of functions E -> F.  A *cover* is a tuple c in (F + {GAP})^k such
that every x in E is "hit": c_i = f_i(x) for some i.  Covers are ordered
by generality (GAP is more general than any value); the key combinatorial
facts the paper uses are

* |min-covers(E, f)| <= k!          (at most k! minimal covers), and
* there is a representative subset E' <= E with covers(E', f) =
  covers(E, f) and |E'| = O(k!).

Intuition: a disequality constraint "exists z in E avoiding the values
f'(x)" fails exactly when the tuple f'(x) covers the table of candidate
witnesses; minimal covers and representative sets compress that test to a
query-size object, which is what lets disequalities be eliminated without
touching the data more than linearly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)


class _Gap:
    """The 'blank' cover entry (written ⊔ in the paper)."""

    _instance: Optional["_Gap"] = None

    def __new__(cls) -> "_Gap":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "GAP"


GAP = _Gap()

Cover = Tuple[Any, ...]


@dataclass
class Table:
    """A table (E, f): rows indexed by elements, k value columns.

    ``rows`` maps each element of E to its tuple (f_1(x), ..., f_k(x)).
    """

    rows: Dict[Hashable, Tuple[Any, ...]]
    k: int

    @classmethod
    def from_functions(cls, elements: Iterable[Hashable],
                       functions: Sequence[Callable[[Any], Any]]) -> "Table":
        functions = list(functions)
        rows = {x: tuple(f(x) for f in functions) for x in elements}
        return cls(rows, len(functions))

    @classmethod
    def from_rows(cls, rows: Dict[Hashable, Tuple[Any, ...]]) -> "Table":
        k = len(next(iter(rows.values()))) if rows else 0
        for r in rows.values():
            if len(r) != k:
                raise ValueError("ragged table rows")
        return cls(dict(rows), k)

    def elements(self) -> List[Hashable]:
        return list(self.rows)

    def restrict(self, elements: Iterable[Hashable]) -> "Table":
        elems = set(elements)
        return Table({x: r for x, r in self.rows.items() if x in elems}, self.k)

    def column_values(self, i: int) -> Set[Any]:
        return {r[i] for r in self.rows.values()}

    def __len__(self) -> int:
        return len(self.rows)


def is_cover(table: Table, cover: Sequence[Any]) -> bool:
    """Definition 4.16: every element is hit in some coordinate."""
    if len(cover) != table.k:
        raise ValueError(f"cover length {len(cover)} != k = {table.k}")
    for row in table.rows.values():
        if not any(c is not GAP and c == v for c, v in zip(cover, row)):
            return False
    return True


def more_general(c_prime: Sequence[Any], c: Sequence[Any]) -> bool:
    """Definition 4.17: c' <= c — every coordinate equal or GAP in c'."""
    return all(cp is GAP or cp == cv for cp, cv in zip(c_prime, c))


def minimal_covers(table: Table) -> List[Cover]:
    """The set of minimal covers of (E, f); |result| <= k! (paper, Sec 4.3).

    Recursion from the paper: fix any a in E; every cover must hit a, i.e.
    use c_i = f_i(a) for some i, and the rest must cover
    E_i^a = {x : f_i(x) != f_i(a)} in the remaining coordinates.
    """
    def rec(rows: Dict[Hashable, Tuple[Any, ...]], columns: Tuple[int, ...]
            ) -> List[Dict[int, Any]]:
        # returns partial covers as {column index: value}; missing = GAP
        if not rows:
            return [{}]
        a = next(iter(rows))
        row_a = rows[a]
        out: List[Dict[int, Any]] = []
        for pos, col in enumerate(columns):
            value = row_a[col]
            remaining_cols = columns[:pos] + columns[pos + 1:]
            survivors = {x: r for x, r in rows.items() if r[col] != value}
            for partial in rec(survivors, remaining_cols):
                partial = dict(partial)
                partial[col] = value
                out.append(partial)
        return out

    raw = rec(table.rows, tuple(range(table.k)))
    covers = {tuple(p.get(i, GAP) for i in range(table.k)) for p in raw}
    # filter to minimal ones
    minimal = [
        c for c in covers
        if not any(other != c and more_general(other, c) for other in covers)
    ]
    minimal.sort(key=lambda c: tuple(repr(v) for v in c))
    return minimal


def all_covers(table: Table, value_pool: Optional[Sequence[Set[Any]]] = None
               ) -> Set[Cover]:
    """All covers with coordinates drawn from the table's own columns
    (plus GAP) — exponential, used in tests to validate the minimal-cover
    recursion and Example 4.19.

    ``value_pool`` optionally widens the per-coordinate candidate values.
    """
    from itertools import product

    pools: List[List[Any]] = []
    for i in range(table.k):
        values = set(table.column_values(i))
        if value_pool is not None:
            values |= value_pool[i]
        pools.append([GAP] + sorted(values, key=repr))
    return {c for c in product(*pools) if is_cover(table, c)}


def representative_set(table: Table) -> List[Hashable]:
    """A subset E' with covers(E', f) = covers(E, f), |E'| = O(k!).

    Recursive choice mirroring the minimal-cover recursion: pick any a,
    keep it, and recurse on each E_i^a with coordinate i discarded.
    """
    def rec(rows: Dict[Hashable, Tuple[Any, ...]], columns: Tuple[int, ...]
            ) -> Set[Hashable]:
        if not rows:
            return set()
        if not columns:
            # no coordinates left: a non-empty residue has no covers at all,
            # and one witness row is needed to preserve that fact
            return {next(iter(rows))}
        a = next(iter(rows))
        row_a = rows[a]
        chosen: Set[Hashable] = {a}
        for pos, col in enumerate(columns):
            survivors = {x: r for x, r in rows.items() if r[col] != row_a[col]}
            chosen |= rec(survivors, columns[:pos] + columns[pos + 1:])
        return chosen

    keep = rec(table.rows, tuple(range(table.k)))
    return [x for x in table.rows if x in keep]


def covers_equal(table: Table, subset: Iterable[Hashable]) -> bool:
    """Check the defining property of a representative set (test helper):
    the subset has exactly the same covers, over the full table's value
    pool, as the whole table."""
    sub = table.restrict(subset)
    pool = [table.column_values(i) for i in range(table.k)]
    return all_covers(table, value_pool=pool) == all_covers(sub, value_pool=pool)


def excludes_all(table: Table, forbidden: Sequence[Any]) -> bool:
    """Is there an element x with f_i(x) != forbidden_i for every i?

    This is the semantic test disequality elimination needs ("exists z in
    E avoiding the values"), and it equals 'forbidden is NOT a cover'.
    """
    return not is_cover(table, list(forbidden))
