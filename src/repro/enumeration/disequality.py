"""Enumeration of acyclic conjunctive queries with disequalities
(Section 4.3, Theorem 4.20).

The paper eliminates disequalities through a functional re-encoding plus
the cover machinery of :mod:`repro.enumeration.covers`: a constraint
"exists a witness z avoiding the values f'(x)" fails exactly when f'(x)
covers the witness table, and representative sets compress each witness
table to O(k!) entries during a linear preprocessing pass.

This engine implements that idea directly on the relational
representation for the fragment where it stays a constant-size-per-answer
test (everything else falls back to a correct linear-delay engine):

* disequalities between two *free* variables (or a free variable and a
  constant) — checked on the produced answer in O(1) each;
* disequalities whose two variables share an atom — enforced once, while
  materialising that atom's relation (a linear filter);
* disequalities ``z != w`` with z existentially quantified, provided z
  occurs in exactly one atom whose other variables are free: during
  preprocessing the atom is grouped by those variables and, per group,
  only ``k+1`` distinct witness values are retained, where k is the
  number of disequalities on z.  Since every disequality function here is
  the identity, a (k+1)-element subset *is* a representative set in the
  sense of Definition 4.19 — a tuple of k forbidden values covers the
  group iff it covers the retained subset.  At enumeration time each
  candidate answer is checked against at most k+1 stored witnesses per
  constrained atom: query-size work, independent of ||D||.

Queries outside this fragment still enumerate correctly through
:class:`FallbackDisequalityEnumerator` (naive assignments + head
deduplication), which realises the paper's weaker
"f(phi) * ||phi(D)|| * ||D||" bound in spirit.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.data.database import Database
from repro.enumeration.base import Answer, Enumerator
from repro.enumeration.full_acyclic import FullJoinEnumerator
from repro.errors import NotFreeConnexError, UnsupportedQueryError
from repro.eval.join import VarRelation, atom_to_varrelation
from repro.eval.naive import satisfying_assignments
from repro.eval.yannakakis import full_reducer
from repro.hypergraph.components import s_components
from repro.logic.atoms import Atom, Comparison
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Constant, Variable


class _WitnessConstraint:
    """One quantified variable's disequality bundle.

    For atom A(y_vars..., z) grouped by the free variables y_vars: at most
    k+1 distinct z-witnesses are stored per group; a candidate answer
    passes iff some stored witness avoids all its forbidden values.
    """

    __slots__ = ("atom_index", "group_vars", "witnesses", "others")

    def __init__(self, atom_index: int, group_vars: Tuple[Variable, ...],
                 witnesses: Dict[Tuple[Any, ...], Tuple[Any, ...]],
                 others: Tuple[Any, ...]):
        self.atom_index = atom_index
        self.group_vars = group_vars
        # group key -> up to k+1 distinct witness values
        self.witnesses = witnesses
        # the other sides of the disequalities: Variables (free) or raw values
        self.others = others

    def passes(self, assignment: Dict[Variable, Any]) -> bool:
        key = tuple(assignment[v] for v in self.group_vars)
        stored = self.witnesses.get(key)
        if stored is None:
            return False
        forbidden = {
            assignment[o] if isinstance(o, Variable) else o for o in self.others
        }
        return any(w not in forbidden for w in stored)


def _split_comparisons(cq: ConjunctiveQuery):
    """Categorise the disequalities; raise on order comparisons."""
    if cq.order_comparisons():
        raise UnsupportedQueryError(
            "order comparisons (<, <=) make even acyclic queries W[1]-hard "
            "(Theorem 4.15); this engine handles disequalities only"
        )
    free = cq.free_variables()
    atom_vars = [a.variable_set() for a in cq.atoms]
    free_free: List[Comparison] = []
    same_atom: List[Comparison] = []
    quantified: List[Comparison] = []
    for comp in cq.disequalities():
        vs = comp.variable_set()
        quant = vs - free
        if not quant:
            free_free.append(comp)
        elif any(vs <= av for av in atom_vars):
            same_atom.append(comp)
        else:
            quantified.append(comp)
    return free_free, same_atom, quantified


class DisequalityEnumerator(Enumerator):
    """Constant-delay-style enumeration of a free-connex ACQ with
    disequalities (see module docstring for the exact fragment)."""

    def __init__(self, cq: ConjunctiveQuery, db: Database):
        super().__init__()
        core = cq.without_comparisons()
        if not core.is_acyclic():
            raise NotFreeConnexError(f"core of {cq!r} is not acyclic")
        if not core.is_free_connex():
            raise NotFreeConnexError(
                f"core of {cq!r} is not free-connex; Theorem 4.20 says no "
                "constant-delay enumeration is possible (assuming Mat-Mul)"
            )
        self.cq = cq
        self.db = db
        self._constraints: List[_WitnessConstraint] = []
        self._free_checks: List[Comparison] = []
        self._inner: Optional[FullJoinEnumerator] = None
        self._boolean_true = False

    # ------------------------------------------------------------ preprocess

    def _preprocess(self) -> None:
        cq, db = self.cq, self.db
        free = cq.free_variables()
        free_free, same_atom, quantified = _split_comparisons(cq)
        self._free_checks = free_free

        # group the quantified disequalities by their quantified variable
        by_var: Dict[Variable, List[Comparison]] = {}
        for comp in quantified:
            quants = [v for v in comp.variables() if v not in free]
            if len(quants) != 1:
                raise UnsupportedQueryError(
                    f"disequality {comp!r} links two quantified variables "
                    "from different atoms — outside the supported fragment"
                )
            by_var.setdefault(quants[0], []).append(comp)

        # materialise atoms, applying same-atom disequalities immediately
        relations = [atom_to_varrelation(db, atom) for atom in cq.atoms]
        for comp in same_atom:
            for i, atom in enumerate(cq.atoms):
                if comp.variable_set() <= atom.variable_set():
                    filtered = VarRelation(relations[i].variables)
                    for t in relations[i]:
                        if comp.evaluate(relations[i].assignment(t)):
                            filtered.add(t)
                    relations[i] = filtered
                    break

        # rewrite each constrained quantified variable's atom
        drop_vars: Set[Variable] = set()
        for z, comps in by_var.items():
            hosts = [i for i, a in enumerate(cq.atoms) if z in a.variable_set()]
            if len(hosts) != 1:
                raise UnsupportedQueryError(
                    f"quantified variable {z!r} occurs in {len(hosts)} atoms; "
                    "the witness-table rewriting needs a single host atom"
                )
            host = hosts[0]
            group_vars = tuple(v for v in relations[host].variables if v is not z)
            if any(v not in free for v in group_vars):
                raise UnsupportedQueryError(
                    f"host atom of {z!r} has quantified co-variables; outside "
                    "the supported fragment"
                )
            k = len(comps)
            others: List[Any] = []
            for comp in comps:
                other_term = comp.right if comp.left is z else comp.left
                others.append(
                    other_term if isinstance(other_term, Variable) else other_term.value
                )
            # representative witnesses: k+1 distinct z values per group
            witnesses: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}
            z_pos = relations[host].position(z)
            group_pos = [relations[host].position(v) for v in group_vars]
            staging: Dict[Tuple[Any, ...], List[Any]] = {}
            for t in relations[host]:
                key = tuple(t[p] for p in group_pos)
                bucket = staging.setdefault(key, [])
                if len(bucket) <= k and t[z_pos] not in bucket:
                    bucket.append(t[z_pos])
            for key, bucket in staging.items():
                witnesses[key] = tuple(bucket)
            self._constraints.append(
                _WitnessConstraint(host, group_vars, witnesses, tuple(others))
            )
            # z is existential and now fully handled: project it away
            relations[host] = relations[host].project(group_vars)
            drop_vars.add(z)

        # the core query with the constrained variables projected out
        core = self._projected_core(drop_vars)
        derived = _derive_free_join_from(core, relations, free)
        if core.is_boolean():
            self._boolean_true = all(len(r) > 0 for r in derived) and not self._constraints \
                and not self._free_checks
            if self._constraints or self._free_checks:
                # need a witness check even for Boolean output
                self._boolean_true = self._boolean_exists(derived)
            return
        self._inner = FullJoinEnumerator(derived, self.cq.head, reduce=True)
        self._inner.preprocess()

    def _projected_core(self, drop_vars: Set[Variable]) -> ConjunctiveQuery:
        """The comparison-free core with constrained variables deleted from
        their (single) host atoms."""
        new_atoms: List[Atom] = []
        for i, atom in enumerate(self.cq.atoms):
            kept = [t for t in atom.terms
                    if not (isinstance(t, Variable) and t in drop_vars)]
            if len(kept) != len(atom.terms):
                new_atoms.append(Atom(f"__proj{i}_{atom.relation}", kept))
            else:
                new_atoms.append(atom)
        return ConjunctiveQuery(self.cq.head, new_atoms, (), name=self.cq.name)

    def _boolean_exists(self, derived: List[VarRelation]) -> bool:
        if not derived:
            return self._passes({})
        if any(len(r) == 0 for r in derived):
            return False
        enum = FullJoinEnumerator(derived,
                                  tuple({v for r in derived for v in r.variables}),
                                  reduce=True)
        for tup in enum:
            assignment = dict(zip(enum._head, tup))
            if self._passes(assignment):
                return True
        return False

    def _passes(self, assignment: Dict[Variable, Any]) -> bool:
        for comp in self._free_checks:
            if not comp.evaluate(assignment):
                return False
        for constraint in self._constraints:
            if not constraint.passes(assignment):
                return False
        return True

    # ------------------------------------------------------------- enumerate

    def _enumerate(self) -> Iterator[Answer]:
        if self.cq.is_boolean():
            if self._boolean_true:
                yield ()
            return
        if self._inner is None:
            return
        head = tuple(self.cq.head)
        for tup in self._inner._enumerate():
            assignment = dict(zip(head, tup))
            if self._passes(assignment):
                yield tup


def _derive_free_join_from(core: ConjunctiveQuery, relations: List[VarRelation],
                           free: FrozenSet[Variable]) -> List[VarRelation]:
    """derive_free_join, but starting from pre-materialised (and possibly
    pre-filtered / projected) relations."""
    _tree, reduced = full_reducer(core, None, relations=relations)
    h = core.hypergraph()
    derived: List[VarRelation] = []
    for i, atom in enumerate(core.atoms):
        if atom.variable_set() <= free:
            derived.append(reduced[i])
    for comp in s_components(h, free):
        f_vars = tuple(sorted(comp.s_vertices, key=lambda v: v.name))
        if not f_vars:
            if any(len(reduced[i]) == 0 for i in comp.edge_indexes):
                derived.append(VarRelation(()))
            continue
        carrier = None
        for i, atom in enumerate(core.atoms):
            if frozenset(f_vars) <= atom.variable_set():
                carrier = i
                break
        if carrier is None:
            raise NotFreeConnexError(
                f"free variables {[v.name for v in f_vars]} not covered by a "
                f"single atom after rewriting: {core!r} is not free-connex"
            )
        derived.append(reduced[carrier].project(f_vars))
    return derived


class FallbackDisequalityEnumerator(Enumerator):
    """Correct (but only polynomial-delay) enumeration for ACQ!= queries
    outside the constant-delay fragment: backtracking assignments with
    head deduplication."""

    def __init__(self, cq: ConjunctiveQuery, db: Database):
        super().__init__()
        self.cq = cq
        self.db = db

    def _preprocess(self) -> None:
        return None

    def _enumerate(self) -> Iterator[Answer]:
        seen: Set[Answer] = set()
        head = self.cq.head
        for assignment in satisfying_assignments(self.cq, self.db):
            tup = tuple(assignment[v] for v in head)
            if tup not in seen:
                seen.add(tup)
                yield tup


def enumerate_acq_disequalities(cq: ConjunctiveQuery, db: Database) -> Enumerator:
    """Best applicable engine: the witness-table constant-delay engine when
    the query fits its fragment, otherwise the fallback."""
    try:
        enum = DisequalityEnumerator(cq, db)
        enum.preprocess()  # fragment checks happen here
        return enum
    except UnsupportedQueryError:
        return FallbackDisequalityEnumerator(cq, db)
