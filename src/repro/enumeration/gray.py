"""Sigma_0 second-order enumeration with delta-constant delay via Gray
codes (Section 5.2, Theorem 5.5).

A quantifier-free formula phi(x, X) constrains the membership in X of
only the tuples it explicitly mentions (built from constants and the free
first-order variables) — every other tuple of the universe is free.  The
answer set is therefore a union of *cubes*: (assignment of x, forced
membership pattern, arbitrary subset of the untouched universe).

Enumerating a cube's 2^m free subsets in reflected-Gray-code order means
consecutive solutions differ in exactly one element, so an algorithm that
maintains the current solution on an output tape performs O(1) work per
solution — the *delta-constant delay* notion of the paper (the full
solution may be linear-size, so writing it out each time is impossible;
only the delta is).

:class:`Sigma0SOEnumerator` emits :class:`Delta` events; ``current()``
exposes the output tape.  ``solutions()`` materialises each answer for
tests (at linear cost per answer, obviously).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database
from repro.errors import UnsupportedQueryError
from repro.eval.naive import evaluate_fo
from repro.logic.fo import Formula, SOAtom, is_quantifier_free
from repro.logic.terms import Constant, Variable


@dataclass(frozen=True)
class Delta:
    """One output-tape edit: op in {"begin", "add", "remove", "emit"}.

    A solution is complete at every "emit"; "begin" resets the tape to the
    given base set (new cube / new first-order assignment) and its cost is
    bounded by the formula size plus the previous solution's size — the
    per-*solution* amortised work stays constant because every cube emits
    at least as many solutions as its reset costs.
    """

    op: str
    element: Optional[Tuple[Any, ...]] = None
    fo_assignment: Optional[Tuple[Any, ...]] = None


def gray_flip_sequence(n: int) -> Iterator[int]:
    """Indexes flipped by the binary reflected Gray code on n bits:
    position of the lowest set bit of i, for i = 1 .. 2^n - 1."""
    for i in range(1, 1 << n):
        yield (i & -i).bit_length() - 1


class Sigma0SOEnumerator:
    """Enumerate {(a, S) : D |= phi(a, S)} for quantifier-free phi with one
    free second-order variable, via Gray-code cube walking.

    Parameters
    ----------
    formula:
        Quantifier-free FO formula with free FO variables and exactly one
        free second-order variable.
    db:
        The database.
    universe:
        Candidate tuples for the SO variable; defaults to Dom(D)^arity.
        (The answer sets are subsets of this universe.)
    """

    def __init__(self, formula: Formula, db: Database,
                 universe: Optional[Sequence[Tuple[Any, ...]]] = None):
        if not is_quantifier_free(formula):
            raise UnsupportedQueryError("Sigma_0 enumeration needs a quantifier-free formula")
        so_vars = sorted(formula.so_variables(), key=lambda s: s.name)
        if len(so_vars) != 1:
            raise UnsupportedQueryError(
                f"exactly one free second-order variable expected, got {len(so_vars)}"
            )
        self.formula = formula
        self.db = db
        self.so_var = so_vars[0]
        self.fo_vars = tuple(sorted(formula.free_variables(), key=lambda v: v.name))
        if universe is None:
            universe = self._default_universe()
        self.universe: List[Tuple[Any, ...]] = [tuple(t) for t in universe]
        self._current: Set[Tuple[Any, ...]] = set()
        self._current_fo: Optional[Tuple[Any, ...]] = None

    def _default_universe(self) -> List[Tuple[Any, ...]]:
        from itertools import product

        return [t for t in product(self.db.domain, repeat=self.so_var.arity)]

    # ------------------------------------------------------------- interface

    def current(self) -> FrozenSet[Tuple[Any, ...]]:
        """The output tape: the current solution's SO part."""
        return frozenset(self._current)

    def current_fo(self) -> Optional[Tuple[Any, ...]]:
        return self._current_fo

    def deltas(self) -> Iterator[Delta]:
        """The delta stream; every "emit" marks a complete solution."""
        for fo_tuple, assignment in self._fo_assignments():
            mentioned = self._mentioned_tuples(assignment)
            free_part = [t for t in self.universe if t not in set(mentioned)]
            for pattern in self._satisfying_patterns(assignment, mentioned):
                base = set(pattern)
                self._current = set(base)
                self._current_fo = fo_tuple
                yield Delta("begin", fo_assignment=fo_tuple)
                yield Delta("emit", fo_assignment=fo_tuple)
                for flip in gray_flip_sequence(len(free_part)):
                    element = free_part[flip]
                    if element in self._current:
                        self._current.discard(element)
                        yield Delta("remove", element=element, fo_assignment=fo_tuple)
                    else:
                        self._current.add(element)
                        yield Delta("add", element=element, fo_assignment=fo_tuple)
                    yield Delta("emit", fo_assignment=fo_tuple)

    def solutions(self) -> Iterator[Tuple[Tuple[Any, ...], FrozenSet[Tuple[Any, ...]]]]:
        """Materialised (fo tuple, SO set) answers — for tests; linear cost
        per answer by nature."""
        for delta in self.deltas():
            if delta.op == "emit":
                yield (delta.fo_assignment, self.current())

    def count(self) -> int:
        """Number of answers, computed cube-wise: #patterns * 2^#free."""
        total = 0
        for _fo_tuple, assignment in self._fo_assignments():
            mentioned = self._mentioned_tuples(assignment)
            n_free = len([t for t in self.universe if t not in set(mentioned)])
            patterns = sum(1 for _ in self._satisfying_patterns(assignment, mentioned))
            total += patterns * (1 << n_free)
        return total

    # -------------------------------------------------------------- internals

    def _fo_assignments(self) -> Iterator[Tuple[Tuple[Any, ...], Dict[Variable, Any]]]:
        from itertools import product

        if not self.fo_vars:
            yield (), {}
            return
        for values in product(self.db.domain, repeat=len(self.fo_vars)):
            yield tuple(values), dict(zip(self.fo_vars, values))

    def _mentioned_tuples(self, assignment: Dict[Variable, Any]
                          ) -> List[Tuple[Any, ...]]:
        """Ground tuples whose X-membership the formula can observe."""
        mentioned: Dict[Tuple[Any, ...], None] = {}

        def walk(f: Formula) -> None:
            if isinstance(f, SOAtom) and f.so_var is self.so_var:
                ground = tuple(
                    t.value if isinstance(t, Constant) else assignment[t]
                    for t in f.terms
                )
                mentioned.setdefault(ground, None)
            for c in f.children():
                walk(c)

        walk(self.formula)
        return list(mentioned)

    def _satisfying_patterns(self, assignment: Dict[Variable, Any],
                             mentioned: List[Tuple[Any, ...]]
                             ) -> Iterator[FrozenSet[Tuple[Any, ...]]]:
        """Membership patterns on the mentioned tuples satisfying phi."""
        from itertools import product as iproduct

        for bits in iproduct((False, True), repeat=len(mentioned)):
            chosen = frozenset(t for t, b in zip(mentioned, bits) if b)
            if evaluate_fo(self.formula, self.db, dict(assignment),
                           {self.so_var: set(chosen)}):
                yield chosen
