"""The two-phase enumeration protocol (paper Section 2.3.3).

An :class:`Enumerator` separates *preprocessing* (allowed to read the whole
database, builds indexes, finds the first solution) from *enumeration*
(emits answers one by one, no repetition).  The split is part of the
complexity claims — Constant-Delay_lin means linear preprocessing and a
delay depending on the query only — so it is explicit in the API and is
what :mod:`repro.perf.delay` measures.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from repro.errors import EnumerationError

Answer = Tuple[Any, ...]


class Enumerator:
    """Base class: subclasses implement ``_preprocess`` and ``_enumerate``.

    Usage::

        e = SomeEnumerator(query, db)
        e.preprocess()
        for answer in e:
            ...

    Iterating without calling :meth:`preprocess` first triggers it
    implicitly (convenient in tests; benchmarks call it explicitly so the
    phases can be timed separately).
    """

    def __init__(self) -> None:
        self._preprocessed = False

    def preprocess(self) -> None:
        """Run the preprocessing phase (idempotent)."""
        if not self._preprocessed:
            self._preprocess()
            self._preprocessed = True

    def __iter__(self) -> Iterator[Answer]:
        self.preprocess()
        return self._enumerate()

    # -- to implement ---------------------------------------------------------

    def _preprocess(self) -> None:
        raise NotImplementedError

    def _enumerate(self) -> Iterator[Answer]:
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------------

    def answers(self) -> list:
        """Materialise all answers (preprocessing included)."""
        return list(self)
