"""The two-phase enumeration protocol (paper Section 2.3.3).

An :class:`Enumerator` separates *preprocessing* (allowed to read the whole
database, builds indexes, finds the first solution) from *enumeration*
(emits answers one by one, no repetition).  The split is part of the
complexity claims — Constant-Delay_lin means linear preprocessing and a
delay depending on the query only — so it is explicit in the API and is
what :mod:`repro.perf.delay` measures.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from repro import obs
from repro.errors import EnumerationError

Answer = Tuple[Any, ...]


class Enumerator:
    """Base class: subclasses implement ``_preprocess`` and ``_enumerate``.

    Usage::

        e = SomeEnumerator(query, db)
        e.preprocess()
        for answer in e:
            ...

    Iterating without calling :meth:`preprocess` first triggers it
    implicitly (convenient in tests; benchmarks call it explicitly so the
    phases can be timed separately).

    Both phases are traced (:mod:`repro.obs`): preprocessing runs under
    a ``<Class>.preprocess`` span and iteration under a
    ``<Class>.enumerate`` span annotated with the answer count — the
    span pair is the executable rendering of the paper's two-phase
    protocol, so a trace shows the linear-preprocessing/constant-delay
    split directly.  With tracing disabled both phases run unwrapped.
    """

    def __init__(self) -> None:
        self._preprocessed = False

    def preprocess(self) -> None:
        """Run the preprocessing phase (idempotent)."""
        if not self._preprocessed:
            if obs.enabled():
                with obs.span(type(self).__name__ + ".preprocess"):
                    self._preprocess()
            else:
                self._preprocess()
            self._preprocessed = True

    def __iter__(self) -> Iterator[Answer]:
        self.preprocess()
        if obs.enabled():
            return self._traced_enumerate()
        return self._enumerate()

    def _traced_enumerate(self) -> Iterator[Answer]:
        """Enumeration wrapped in a span; the span closes when the
        stream is exhausted or the consumer abandons the generator."""
        with obs.span(type(self).__name__ + ".enumerate") as sp:
            n = 0
            for answer in self._enumerate():
                n += 1
                yield answer
            sp.set("answers", n)

    # -- to implement ---------------------------------------------------------

    def _preprocess(self) -> None:
        raise NotImplementedError

    def _enumerate(self) -> Iterator[Answer]:
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------------

    def answers(self) -> list:
        """Materialise all answers (preprocessing included)."""
        return list(self)
