"""Random access and random-order enumeration for free-connex ACQs.

The survey's "additional extensions" paragraph (Section 4.3) points at
[Carmeli, Zeevi, Berkholz, Kimelfeld, Schweikardt 2019]: for free-connex
queries one can, after the same linear preprocessing, support

* ``answer(j)`` — return the j-th answer (in a fixed enumeration order)
  in query-size time, and
* random-*order* enumeration — a uniformly random permutation of the
  answers, emitted one by one without repetition and without
  materialising the answer set.

The structure making this possible is the derived quantifier-free join
of the free-connex engine: over its join tree, count, for every node
tuple, the number of join results in the subtree below it (one linear
message-passing pass, as in the counting engine, but *keeping* the
per-tuple counts).  An answer index then decomposes along the tree like
a mixed-radix numeral: at each node, a binary search over the sibling
tuples' cumulative counts picks the branch, and the children split the
residual index by their subtree-count products.

``answer(j)`` costs O(|query| * log ||D||); random order is sampling
indexes without replacement (a Fisher-Yates over [0, count) driven by a
permutation generator that stores O(#emitted) state).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.data.database import Database
from repro.enumeration.free_connex import derive_free_join
from repro.errors import EnumerationError, NotFreeConnexError, UnsupportedQueryError
from repro.eval.join import VarRelation
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import JoinTree, build_join_tree
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable

Tup = Tuple[Any, ...]


class _NodeIndex:
    """Per (node, parent-key) bucket: the node's tuples in a fixed order
    with cumulative subtree counts, enabling O(log) index descent."""

    __slots__ = ("tuples", "cumulative")

    def __init__(self) -> None:
        self.tuples: List[Tup] = []
        self.cumulative: List[int] = []  # cumulative[i] = sum counts[0..i]

    def add(self, tup: Tup, count: int) -> None:
        total = self.cumulative[-1] if self.cumulative else 0
        self.tuples.append(tup)
        self.cumulative.append(total + count)

    def total(self) -> int:
        return self.cumulative[-1] if self.cumulative else 0

    def locate(self, index: int) -> Tuple[Tup, int]:
        """The tuple owning ``index`` and the residual index within it."""
        pos = bisect_right(self.cumulative, index)
        if pos >= len(self.tuples):
            raise EnumerationError(
                f"index {index} out of range (bucket total {self.total()})")
        before = self.cumulative[pos - 1] if pos else 0
        return self.tuples[pos], index - before


class RandomAccessEnumerator:
    """answer(j), count(), inverted lookup and random-order iteration for
    a free-connex ACQ, after one linear preprocessing pass."""

    def __init__(self, cq: ConjunctiveQuery, db: Database):
        if cq.has_comparisons():
            raise UnsupportedQueryError(
                "random access is implemented for comparison-free queries")
        if not cq.is_acyclic() or not cq.is_free_connex():
            raise NotFreeConnexError(
                f"{cq!r} is not free-connex; random access in query-size "
                "time is not available (Theorem 4.8 territory)")
        self.cq = cq
        self.db = db
        self._prepare()

    # ------------------------------------------------------------ building

    def _prepare(self) -> None:
        derived = [r for r in derive_free_join(self.cq, self.db)
                   if len(r.variables) > 0]
        if self.cq.is_boolean():
            # zero or one answer: the empty tuple
            from repro.enumeration.free_connex import FreeConnexEnumerator

            sat = bool(list(FreeConnexEnumerator(self.cq, self.db)))
            self._boolean_count = 1 if sat else 0
            self._relations: List[VarRelation] = []
            return
        self._boolean_count = None
        if any(len(r) == 0 for r in derived):
            self._relations = []
            self._total = 0
            return
        self._relations = derived
        h = Hypergraph(
            {v for r in derived for v in r.variables},
            [frozenset(r.variables) for r in derived],
        )
        tree = build_join_tree(h)
        from repro.enumeration.full_acyclic import reduce_relations

        self._relations = reduce_relations(tree, list(derived))
        if any(len(r) == 0 for r in self._relations):
            self._total = 0
            return
        self._tree = tree
        self._order = tree.top_down()
        # probe variables per node (shared with parent)
        self._probe_vars: Dict[int, Tuple[Variable, ...]] = {}
        for node in self._order:
            parent = tree.parent[node]
            if parent is None:
                self._probe_vars[node] = ()
            else:
                pv = set(self._relations[parent].variables)
                self._probe_vars[node] = tuple(
                    v for v in self._relations[node].variables if v in pv)
        # bottom-up subtree counts per tuple, bucketed by parent key
        self._buckets: Dict[int, Dict[Tup, _NodeIndex]] = {}
        counts: Dict[int, Dict[Tup, int]] = {}
        for node in tree.bottom_up():
            rel = self._relations[node]
            pv = self._probe_vars[node]
            key_pos = [rel.position(v) for v in pv]
            child_info = []
            for c in tree.children[node]:
                cpv = self._probe_vars[c]
                child_info.append(
                    (c, [rel.position(v) for v in cpv]))
            node_counts: Dict[Tup, int] = {}
            buckets: Dict[Tup, _NodeIndex] = {}
            for t in rel:
                count = 1
                for c, pos in child_info:
                    child_key = tuple(t[p] for p in pos)
                    bucket = self._buckets[c].get(child_key)
                    count *= bucket.total() if bucket else 0
                if count == 0:
                    continue  # cannot happen after reduction, defensive
                node_counts[t] = count
                key = tuple(t[p] for p in key_pos)
                buckets.setdefault(key, _NodeIndex()).add(t, count)
            counts[node] = node_counts
            self._buckets[node] = buckets
        root_bucket = self._buckets[tree.root].get(())
        self._total = root_bucket.total() if root_bucket else 0

    # ------------------------------------------------------------- queries

    def count(self) -> int:
        """|phi(D)| (also obtainable via the counting engine; here it is a
        by-product of the index)."""
        if self._boolean_count is not None:
            return self._boolean_count
        return getattr(self, "_total", 0)

    def answer(self, j: int) -> Tup:
        """The j-th answer, 0-based, in the index's fixed order."""
        if j < 0 or j >= self.count():
            raise IndexError(f"answer index {j} out of range 0..{self.count() - 1}")
        if self._boolean_count is not None:
            return ()
        assignment: Dict[Variable, Any] = {}

        def descend(node: int, index: int) -> None:
            pv = self._probe_vars[node]
            key = tuple(assignment[v] for v in pv)
            bucket = self._buckets[node][key]
            tup, residual = bucket.locate(index)
            rel = self._relations[node]
            for v, val in zip(rel.variables, tup):
                assignment[v] = val
            # split the residual index across the children (mixed radix,
            # rightmost child varies fastest)
            children = self._tree.children[node]
            child_totals = []
            for c in children:
                cpv = self._probe_vars[c]
                ckey = tuple(assignment[v] for v in cpv)
                child_totals.append((c, self._buckets[c][ckey].total()))
            for c, total in reversed(child_totals):
                index_c = residual % total
                residual //= total
                descend(c, index_c)

        descend(self._tree.root, j)
        return tuple(assignment[v] for v in self.cq.head)

    def __len__(self) -> int:
        return self.count()

    def __getitem__(self, j: int) -> Tup:
        return self.answer(j)

    def in_order(self) -> Iterator[Tup]:
        """All answers in index order (for tests: must equal answer(0..))."""
        for j in range(self.count()):
            yield self.answer(j)

    def random_order(self, seed: Optional[int] = None) -> Iterator[Tup]:
        """A uniformly random permutation of the answers, lazily.

        Uses the classic swap-dictionary Fisher-Yates so only O(#emitted)
        state is kept — no materialisation of the answer set.
        """
        rng = random.Random(seed)
        n = self.count()
        swaps: Dict[int, int] = {}
        for i in range(n):
            j = rng.randrange(i, n)
            vi = swaps.get(i, i)
            vj = swaps.get(j, j)
            swaps[i], swaps[j] = vj, vi
            yield self.answer(swaps[i])

    def sample(self, k: int, seed: Optional[int] = None,
               replacement: bool = True) -> List[Tup]:
        """k answers sampled uniformly (with or without replacement)."""
        rng = random.Random(seed)
        n = self.count()
        if not replacement:
            if k > n:
                raise ValueError(f"cannot sample {k} of {n} without replacement")
            out: List[Tup] = []
            for tup in self.random_order(seed=rng.randrange(2 ** 30)):
                out.append(tup)
                if len(out) == k:
                    break
            return out
        return [self.answer(rng.randrange(n)) for _ in range(k)]
