"""Enumeration algorithms (Sections 2.3.3, 3, 4 and 5.2).

Every enumerator follows the two-phase protocol of the paper: an explicit
*preprocessing* phase building data structures (and finding the first
solution), then an *enumeration* phase emitting answers one by one without
repetition.  The phase split is what the delay measures of
:mod:`repro.perf.delay` instrument.

Engines:

* :mod:`~repro.enumeration.full_acyclic` — constant-delay enumeration of a
  globally consistent acyclic full join (the kernel under everything);
* :mod:`~repro.enumeration.acq_linear` — Algorithm 2: linear-delay
  enumeration of any ACQ (Theorem 4.3);
* :mod:`~repro.enumeration.free_connex` — constant delay after linear
  preprocessing for free-connex ACQs (Theorem 4.6);
* :mod:`~repro.enumeration.ucq_union` — unions of CQs via union extensions
  (Theorem 4.13);
* :mod:`~repro.enumeration.disequality` — ACQ with disequalities via the
  cover machinery (Theorem 4.20);
* :mod:`~repro.enumeration.bounded_degree` — FO over bounded-degree
  structures via quantifier elimination (Theorem 3.2, Example 3.3);
* :mod:`~repro.enumeration.low_degree` — FO-fragment enumeration over
  low-degree structures (Theorems 3.9-3.10);
* :mod:`~repro.enumeration.gray` — delta-constant-delay enumeration of
  Sigma_0 second-order answer sets via Gray codes (Theorem 5.5).
"""

from repro.enumeration.base import Enumerator
from repro.enumeration.full_acyclic import FullJoinEnumerator
from repro.enumeration.acq_linear import LinearDelayACQEnumerator
from repro.enumeration.free_connex import FreeConnexEnumerator

__all__ = [
    "Enumerator",
    "FullJoinEnumerator",
    "LinearDelayACQEnumerator",
    "FreeConnexEnumerator",
]
