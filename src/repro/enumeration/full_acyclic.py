"""Constant-delay enumeration of a globally consistent acyclic full join.

This is the kernel under the free-connex algorithm (Theorem 4.6): given
relations R_1..R_m over variable sets forming an alpha-acyclic hypergraph,
*globally consistent* (every tuple of every relation participates in at
least one join result), the full join can be enumerated with delay
O(m) — independent of the data — by nested index probes along a join tree
in depth-first preorder:

* by the running-intersection property, the variables a node shares with
  everything enumerated before it are exactly those shared with its
  parent, so one hash probe per node suffices;
* by global consistency no probe ever comes back empty, so the nested
  loops never hit a dead end and each step of the iteration makes output
  progress.

Global consistency is the caller's responsibility; for safety the
constructor can run a full-reducer pass (pairwise consistency along a join
tree implies global consistency for acyclic schemes — Beeri, Fagin, Maier,
Yannakakis 1983).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import NotAcyclicError
from repro.engine.enumerate import BlockIterator, batchable, resolve_block_size
from repro.enumeration.base import Answer, Enumerator
from repro.eval.join import VarRelation
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import JoinTree, build_join_tree
from repro.logic.terms import Variable


#: answers amortised into one registry call on the tuple-path probe
#: join (mirrors the batched pipeline's per-block recording)
_DELAY_STRIDE = 256


def reduce_relations(tree: JoinTree, relations: List[VarRelation],
                     engine=None) -> List[VarRelation]:
    """Full reducer on bare relations along a join tree (node i uses
    relations[i]); returns the reduced list.

    When ``engine`` (an Engine, a backend name, or None for the current
    selection) exposes the worker-pool hooks and the inputs clear its
    tuple-count threshold, the semijoin passes are sharded across the
    pool; the reduced relations are byte-identical either way.
    """
    relations = list(relations)
    from repro.engine import resolve_engine

    eng = resolve_engine(engine)
    parallel = getattr(eng, "parallel_reduce", None)
    if parallel is not None and eng.should_parallelise(relations):
        return parallel(tree, relations)
    with obs.span("full_join.reduce", nodes=len(relations)):
        for node in tree.bottom_up():
            parent = tree.parent[node]
            if parent is not None:
                relations[parent] = relations[parent].semijoin(relations[node])
        for node in tree.top_down():
            for child in tree.children[node]:
                relations[child] = relations[child].semijoin(relations[node])
    return relations


class FullJoinEnumerator(Enumerator):
    """Enumerate the natural join of ``relations`` with constant delay.

    Parameters
    ----------
    relations:
        The relations to join; their variable sets must form an
        alpha-acyclic hypergraph.
    head:
        Output variable order.  Must cover *all* join variables —
        otherwise the same head tuple could be emitted repeatedly (use the
        free-connex engine for genuine projections).
    reduce:
        When True (default) run the full reducer first, guaranteeing
        global consistency; set False only when the inputs are known
        consistent (saves one linear pass).
    block_size:
        Amortisation block size for the batched columnar pipeline
        (:class:`repro.engine.enumerate.BlockIterator`).  Used only when
        every relation is a ColumnarRelation over one shared dictionary;
        ``None`` consults ``REPRO_BLOCK_SIZE`` (default 1024), and a
        value <= 0 forces the tuple-at-a-time path.
    engine:
        Backend selection (an Engine, a name, or None for the current
        process-wide selection).  An engine with worker-pool hooks routes
        the reduction and the batched enumeration through the pool when
        the inputs clear its threshold; answer order is unaffected.
    """

    def __init__(self, relations: Sequence[VarRelation],
                 head: Sequence[Variable], reduce: bool = True,
                 block_size: Optional[int] = None, engine=None):
        super().__init__()
        self._relations = list(relations)
        self._head = tuple(head)
        self._reduce = reduce
        self._engine = engine
        self._block_size = resolve_block_size(block_size)
        self._block_iter: Optional[BlockIterator] = None
        all_vars: Dict[Variable, None] = {}
        for r in self._relations:
            for v in r.variables:
                all_vars.setdefault(v, None)
        if set(self._head) != set(all_vars):
            raise ValueError(
                "head must cover exactly the join variables; "
                f"head={sorted(v.name for v in self._head)} "
                f"join={sorted(v.name for v in all_vars)}"
            )
        self._tree: Optional[JoinTree] = None
        self._order: List[int] = []
        self._probe_vars: List[Tuple[Variable, ...]] = []
        self._empty = False

    # ------------------------------------------------------------ preprocess

    def _preprocess(self) -> None:
        h = Hypergraph(
            {v for r in self._relations for v in r.variables},
            [frozenset(r.variables) for r in self._relations],
        )
        self._tree = build_join_tree(h)  # raises NotAcyclicError if cyclic
        if self._reduce:
            self._relations = reduce_relations(self._tree, self._relations,
                                               engine=self._engine)
        if any(len(r) == 0 for r in self._relations):
            self._empty = True
            return
        if self._block_size > 0 and batchable(self._relations):
            # batched columnar pipeline: probe structures replace the
            # decoded hash indexes entirely
            from repro.engine import resolve_engine

            eng = resolve_engine(self._engine)
            par_enum = getattr(eng, "parallel_enumerator", None)
            if par_enum is not None and eng.should_parallelise(self._relations):
                self._block_iter = par_enum(
                    self._relations, self._head, block_size=self._block_size,
                    tree=self._tree, reduce=False)
            else:
                self._block_iter = BlockIterator(
                    self._relations, self._head, block_size=self._block_size,
                    tree=self._tree, reduce=False)
            return
        # DFS preorder; for each node, the probe variables (shared with parent)
        self._order = self._tree.top_down()
        self._probe_vars = []
        for node in self._order:
            parent = self._tree.parent[node]
            if parent is None:
                self._probe_vars.append(())
            else:
                parent_vars = set(self._relations[parent].variables)
                self._probe_vars.append(tuple(
                    v for v in self._relations[node].variables if v in parent_vars
                ))
        # warm the probe indexes during preprocessing, not mid-enumeration
        with obs.span("full_join.index_build", nodes=len(self._order)):
            for node, pv in zip(self._order, self._probe_vars):
                self._relations[node].index_on(pv)

    # ------------------------------------------------------------- enumerate

    def blocks(self) -> Iterator[List[Answer]]:
        """Answer blocks of size <= block_size (preprocesses if needed).

        On the batched path these are the kernel's native blocks; on the
        tuple path the per-tuple stream is chunked, so consumers can be
        written block-at-a-time against either backend.
        """
        self.preprocess()
        if self._block_iter is not None:
            yield from self._block_iter.blocks()
            return
        block_size = max(1, self._block_size)
        block: List[Answer] = []
        for tup in self._enumerate():
            block.append(tup)
            if len(block) >= block_size:
                yield block
                block = []
        if block:
            yield block

    def _enumerate(self) -> Iterator[Answer]:
        if self._empty:
            return
        if self._block_iter is not None:
            yield from self._block_iter
            return
        if obs.registry().enabled:
            yield from self._enumerate_recorded()
            return
        yield from self._probe_join()

    def _enumerate_recorded(self) -> Iterator[Answer]:
        """The tuple-path probe join with amortised delay recording.

        The batched pipeline records one ``obs.delay`` per kernel block
        (see :meth:`repro.engine.enumerate.BlockIterator.blocks`); the
        tuple path has no native blocks, so production gaps are summed
        across ``_DELAY_STRIDE`` answers before one registry call.
        Clock reads bracket each yield, so consumer time between
        answers never inflates the delay sketch."""
        import time

        clock = time.perf_counter_ns
        produced = 0
        gap_acc = 0
        last = clock()
        for tup in self._probe_join():
            gap_acc += clock() - last
            produced += 1
            yield tup
            last = clock()
            if produced >= _DELAY_STRIDE:
                obs.count("enum.answers", produced)
                obs.delay(gap_acc, produced)
                produced = 0
                gap_acc = 0
        if produced:
            obs.count("enum.answers", produced)
            obs.delay(gap_acc, produced)

    def _probe_join(self) -> Iterator[Answer]:
        order = self._order
        relations = self._relations
        probe_vars = self._probe_vars
        head = self._head
        assignment: Dict[Variable, Any] = {}

        def rec(i: int) -> Iterator[Answer]:
            if i == len(order):
                yield tuple(assignment[v] for v in head)
                return
            node = order[i]
            rel = relations[node]
            pv = probe_vars[i]
            key = tuple(assignment[v] for v in pv)
            for t in rel.index_on(pv).get(key, ()):
                added = []
                for v, val in zip(rel.variables, t):
                    if v not in assignment:
                        assignment[v] = val
                        added.append(v)
                yield from rec(i + 1)
                for v in added:
                    del assignment[v]

        yield from rec(0)
