"""First-order queries over bounded-degree structures (Section 3.1,
Theorems 3.1-3.2, Example 3.3, Algorithm 1).

On a structure of degree <= c, the r-neighbourhood of any element has at
most c^{r+1} elements, and first-order logic is Hanf-local: every FO
sentence is equivalent to a Boolean combination of statements "there are
at least m elements whose r-ball has type tau".  The engines here exploit
exactly that locality, on the *local-pattern* normal form:

* a :class:`Pattern` is an existential formula
  ``exists y  (positive atoms) /\\ (negated atoms) /\\ (disequalities)``
  whose positive atoms connect all its variables;
* each Gaifman-connected component of a pattern is matched by *anchored
  search*: scan the tuples of one atom and grow the match through shared
  variables — on degree-<= c data each seed explores a constant
  (c^{O(||phi||)}) number of candidates, so matching is linear in ||D||
  and each component has at most ||D|| * c^{O(||phi||)} matches;
* answers to the full pattern are the cross product of per-component
  match lists, minus cross-component disequality exceptions, enumerated
  with Algorithm 1's skip-the-exceptions loop: inner components are
  bucketed by the constrained variable, so at most k bucket skips happen
  between consecutive outputs — constant delay;
* counting (Theorem 3.2) is inclusion-exclusion over the cross-component
  disequalities: forcing a subset of them to be equalities merges
  components, and each term is a product of component match counts —
  2^{#disequalities} linear-time terms;
* Boolean sentences are Hanf-style threshold combinations
  (:class:`ThresholdSentence`, :func:`model_check_sentence`): "at least m
  answers of pattern P", combined with and/or/not.

Substitution note (recorded in DESIGN.md): the automatic conversion of
arbitrary FO into this normal form (Hanf normalisation / the quantifier
elimination of [32]) is not implemented; the engines take the normal form
as input, which is where all the data-dependent work of Theorems 3.1-3.2
happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database
from repro.enumeration.base import Answer, Enumerator
from repro.errors import MalformedQueryError, UnsupportedQueryError
from repro.eval.join import VarRelation
from repro.logic.atoms import Atom, Comparison
from repro.logic.terms import Constant, Variable


@dataclass
class Pattern:
    """An existential local pattern (see module docstring).

    ``head`` lists the free variables (answers are tuples in this order);
    all other variables are existentially quantified.
    """

    head: Tuple[Variable, ...]
    atoms: Tuple[Atom, ...]
    negated: Tuple[Atom, ...] = ()
    disequalities: Tuple[Comparison, ...] = ()
    name: str = "P"

    def __post_init__(self) -> None:
        self.head = tuple(Variable(v) if isinstance(v, str) else v for v in self.head)
        self.atoms = tuple(self.atoms)
        self.negated = tuple(self.negated)
        self.disequalities = tuple(self.disequalities)
        covered: Set[Variable] = set()
        for a in self.atoms:
            covered |= a.variable_set()
        for v in self.head:
            if v not in covered:
                raise MalformedQueryError(f"head variable {v!r} not in any positive atom")
        for a in self.negated:
            if not a.variable_set() <= covered:
                raise MalformedQueryError(
                    f"negated atom {a!r} uses variables outside the positive atoms "
                    "(unsafe negation)"
                )
        for c in self.disequalities:
            if c.op != "!=":
                raise MalformedQueryError("patterns only support != comparisons")
            if not c.variable_set() <= covered:
                raise MalformedQueryError(f"unsafe disequality {c!r}")

    def variables(self) -> Tuple[Variable, ...]:
        seen: Dict[Variable, None] = {}
        for a in self.atoms:
            for v in a.variables():
                seen.setdefault(v, None)
        return tuple(seen)

    def components(self) -> List["_Component"]:
        """Gaifman-connected components of the positive atoms."""
        atoms = list(self.atoms)
        parent = {i: i for i in range(len(atoms))}

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        var_home: Dict[Variable, int] = {}
        for i, a in enumerate(atoms):
            for v in a.variable_set():
                if v in var_home:
                    parent[find(i)] = find(var_home[v])
                else:
                    var_home[v] = i
        groups: Dict[int, List[int]] = {}
        for i in range(len(atoms)):
            groups.setdefault(find(i), []).append(i)
        comps: List[_Component] = []
        for idxs in groups.values():
            comp_vars: Dict[Variable, None] = {}
            for i in idxs:
                for v in atoms[i].variables():
                    comp_vars.setdefault(v, None)
            comp_var_set = frozenset(comp_vars)
            neg = tuple(a for a in self.negated if a.variable_set() <= comp_var_set)
            dis = tuple(c for c in self.disequalities if c.variable_set() <= comp_var_set)
            comps.append(_Component(
                atoms=tuple(atoms[i] for i in idxs),
                variables=tuple(comp_vars),
                negated=neg,
                disequalities=dis,
            ))
        comps.sort(key=lambda c: tuple(v.name for v in c.variables))
        return comps

    def cross_disequalities(self) -> List[Comparison]:
        """Disequalities spanning two components."""
        internal: Set[Comparison] = set()
        for comp in self.components():
            internal.update(comp.disequalities)
        return [c for c in self.disequalities if c not in internal]


@dataclass
class _Component:
    atoms: Tuple[Atom, ...]
    variables: Tuple[Variable, ...]
    negated: Tuple[Atom, ...]
    disequalities: Tuple[Comparison, ...]


def match_component(comp: _Component, db: Database) -> VarRelation:
    """All satisfying assignments of one connected component.

    Anchored search: scan the smallest atom's relation; every further
    variable is bound by probing an atom that shares an already-bound
    variable (exists, by connectedness).  With degree bound c each seed
    tuple explores at most c^{#atoms} candidates, so the pass is linear
    in ||D|| for a fixed pattern.
    """
    order = _anchor_order(comp, db)
    anchor = order[0]
    rel = db.relation(anchor.relation)
    out = VarRelation(comp.variables)

    def extend(i: int, assignment: Dict[Variable, Any]) -> None:
        if i == len(order):
            for neg in comp.negated:
                tup = tuple(
                    t.value if isinstance(t, Constant) else assignment[t]
                    for t in neg.terms
                )
                if tup in db.relation(neg.relation):
                    return
            for dis in comp.disequalities:
                if not dis.evaluate(assignment):
                    return
            out.add(tuple(assignment[v] for v in comp.variables))
            return
        atom = order[i]
        relation = db.relation(atom.relation)
        bound_positions: List[int] = []
        key: List[Any] = []
        for pos, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                bound_positions.append(pos)
                key.append(term.value)
            elif term in assignment:
                bound_positions.append(pos)
                key.append(assignment[term])
        candidates = relation.probe(bound_positions, key) if bound_positions else list(relation)
        for t in candidates:
            if not atom.matches(t):
                continue
            binding = atom.bind(t)
            added = [v for v in binding if v not in assignment]
            assignment.update({v: binding[v] for v in added})
            extend(i + 1, assignment)
            for v in added:
                del assignment[v]

    for t in rel:
        if not anchor.matches(t):
            continue
        assignment = anchor.bind(t)
        extend(1, assignment)
    return out


def _anchor_order(comp: _Component, db: Database) -> List[Atom]:
    """Atoms ordered so every atom after the first shares a variable with
    an earlier one; the anchor is the atom with the smallest relation."""
    atoms = list(comp.atoms)
    anchor = min(atoms, key=lambda a: len(db.relation(a.relation)))
    order = [anchor]
    bound = set(anchor.variable_set())
    rest = [a for a in atoms if a is not anchor]
    while rest:
        nxt = next((a for a in rest if a.variable_set() & bound), None)
        if nxt is None:
            raise MalformedQueryError("component atoms are not connected")
        rest.remove(nxt)
        order.append(nxt)
        bound |= nxt.variable_set()
    return order


class BoundedDegreeEnumerator(Enumerator):
    """Constant-delay enumeration of a local pattern's answers
    (Theorem 3.2's enumeration claim).

    Preprocessing is one linear pass per component; the enumeration phase
    walks the cross product of the per-component (head-projected) match
    lists, skipping cross-component disequality exceptions via value
    buckets — the generalisation of Algorithm 1 of the paper.

    Supported cross-component disequalities: between head variables.  The
    inner component's bucket variable is the one its cross-disequalities
    constrain (at most one such variable per component).
    """

    def __init__(self, pattern: Pattern, db: Database):
        super().__init__()
        self.pattern = pattern
        self.db = db
        self._projected: List[VarRelation] = []
        self._proj_vars: List[Tuple[Variable, ...]] = []
        self._cross: List[Comparison] = []
        self._buckets: List[Optional[Dict[Any, List[Tuple[Any, ...]]]]] = []
        self._bucket_var: List[Optional[Variable]] = []

    def _preprocess(self) -> None:
        pattern, db = self.pattern, self.db
        head = set(pattern.head)
        self._cross = pattern.cross_disequalities()
        for comp in self._cross:
            if not comp.variable_set() <= head:
                raise UnsupportedQueryError(
                    f"cross-component disequality {comp!r} involves a "
                    "quantified variable — outside the supported fragment"
                )
        comps = pattern.components()
        for comp in comps:
            matches = match_component(comp, db)
            proj_vars = tuple(v for v in comp.variables if v in head)
            self._proj_vars.append(proj_vars)
            self._projected.append(matches.project(proj_vars))
        # decide, per component, the bucket variable: the variable its
        # incoming cross-disequalities constrain
        comp_of_var: Dict[Variable, int] = {}
        for i, pv in enumerate(self._proj_vars):
            for v in pv:
                comp_of_var[v] = i
        constrained: Dict[int, Set[Variable]] = {}
        for comp in self._cross:
            a, b = comp.left, comp.right
            if not (isinstance(a, Variable) and isinstance(b, Variable)):
                continue  # variable-vs-constant handled as a plain filter
            ia, ib = comp_of_var[a], comp_of_var[b]
            # the later component in enumeration order buckets
            later, var = (ia, a) if ia > ib else (ib, b)
            constrained.setdefault(later, set()).add(var)
        self._buckets = []
        self._bucket_var = []
        for i, rel in enumerate(self._projected):
            vars_here = constrained.get(i, set())
            if len(vars_here) == 1:
                v = next(iter(vars_here))
                pos = rel.position(v)
                buckets: Dict[Any, List[Tuple[Any, ...]]] = {}
                for t in rel:
                    buckets.setdefault(t[pos], []).append(t)
                self._buckets.append(buckets)
                self._bucket_var.append(v)
            else:
                self._buckets.append(None)
                self._bucket_var.append(None)

    def _enumerate(self) -> Iterator[Answer]:
        pattern = self.pattern
        n = len(self._projected)
        if any(len(r) == 0 for r in self._projected):
            return
        head = pattern.head
        # constant filters (variable != constant) and, for components with
        # several constrained variables, fallback filters
        fallback: List[Comparison] = []
        comp_of_var: Dict[Variable, int] = {}
        for i, pv in enumerate(self._proj_vars):
            for v in pv:
                comp_of_var[v] = i
        bucketised: Dict[int, List[Comparison]] = {}
        for comp in self._cross:
            a, b = comp.left, comp.right
            if isinstance(a, Variable) and isinstance(b, Variable):
                later = max(comp_of_var[a], comp_of_var[b])
                if self._bucket_var[later] is not None:
                    bucketised.setdefault(later, []).append(comp)
                else:
                    fallback.append(comp)
            else:
                fallback.append(comp)

        assignment: Dict[Variable, Any] = {}

        def rec(i: int) -> Iterator[Answer]:
            if i == n:
                for comp in fallback:
                    if not comp.evaluate(assignment):
                        return
                yield tuple(assignment[v] for v in head)
                return
            rel = self._projected[i]
            buckets = self._buckets[i]
            if buckets is None:
                iterable: Iterator[Tuple[Any, ...]] = iter(rel)
            else:
                bucket_var = self._bucket_var[i]
                forbidden: Set[Any] = set()
                for comp in bucketised.get(i, []):
                    other = comp.right if comp.left is bucket_var else comp.left
                    if isinstance(other, Variable):
                        forbidden.add(assignment[other])
                    else:
                        forbidden.add(other.value)

                def bucket_iter() -> Iterator[Tuple[Any, ...]]:
                    for value, tuples in buckets.items():
                        if value not in forbidden:
                            yield from tuples

                iterable = bucket_iter()
            for t in iterable:
                for v, val in zip(self._proj_vars[i], t):
                    assignment[v] = val
                yield from rec(i + 1)
            for v in self._proj_vars[i]:
                assignment.pop(v, None)

        yield from rec(0)


# ------------------------------------------------------------------- counting


def count_pattern(pattern: Pattern, db: Database, distinct_head: bool = False) -> int:
    """Number of satisfying assignments of the pattern's variables
    (Theorem 3.2's counting claim).

    Cross-component disequalities are handled by inclusion-exclusion:
    forcing a subset of them to equalities identifies variables, merging
    components; every term is a product of per-component match counts,
    each computed in linear time.

    With ``distinct_head=True`` the count is of *answers* (distinct head
    tuples); this requires the pattern to be quantifier-free or to have
    quantified variables only in components without cross constraints.
    """
    from itertools import combinations

    cross = pattern.cross_disequalities()
    if distinct_head and cross:
        raise UnsupportedQueryError(
            "distinct-answer counting with cross-component disequalities is "
            "outside the inclusion-exclusion fragment"
        )
    relaxed = Pattern(pattern.head, pattern.atoms, pattern.negated,
                      tuple(c for c in pattern.disequalities if c not in cross),
                      pattern.name)
    total = 0
    for r in range(len(cross) + 1):
        for subset in combinations(cross, r):
            total += (-1) ** r * _count_merged(relaxed, subset, db, distinct_head)
    return total


def _count_merged(relaxed: Pattern, forced: Sequence[Comparison], db: Database,
                  distinct_head: bool) -> int:
    """Count matches of ``relaxed`` (no cross disequalities) with the
    equalities in ``forced`` applied by variable identification."""
    mapping: Dict[Variable, Variable] = {}

    def root(v: Variable) -> Variable:
        while v in mapping:
            v = mapping[v]
        return v

    for comp in forced:
        a, b = comp.left, comp.right
        if not (isinstance(a, Variable) and isinstance(b, Variable)):
            raise UnsupportedQueryError(
                "inclusion-exclusion needs variable-to-variable disequalities"
            )
        ra, rb = root(a), root(b)
        if ra is not rb:
            mapping[ra] = rb

    def rename_term(t):
        return root(t) if isinstance(t, Variable) else t

    new_atoms = [Atom(a.relation, [rename_term(t) for t in a.terms])
                 for a in relaxed.atoms]
    new_neg = [Atom(a.relation, [rename_term(t) for t in a.terms])
               for a in relaxed.negated]
    new_dis = []
    for c in relaxed.disequalities:
        left, right = rename_term(c.left), rename_term(c.right)
        if isinstance(left, Variable) and left is right:
            return 0
        new_dis.append(Comparison(left, "!=", right))
    merged = Pattern(
        head=tuple(dict.fromkeys(rename_term(v) for v in relaxed.head)),
        atoms=tuple(new_atoms),
        negated=tuple(new_neg),
        disequalities=tuple(new_dis),
        name=relaxed.name,
    )
    total = 1
    for comp in merged.components():
        matches = match_component(comp, db)
        if distinct_head:
            head_set = set(merged.head)
            proj = tuple(v for v in comp.variables if v in head_set)
            matches = matches.project(proj)
        total *= len(matches)
        if total == 0:
            return 0
    return total


def model_check_pattern(pattern: Pattern, db: Database) -> bool:
    """Is the existential closure of the pattern true (Theorem 3.1)?"""
    return count_pattern(pattern, db) > 0


# ------------------------------------------------- Hanf threshold sentences


@dataclass
class ThresholdSentence:
    """"At least ``threshold`` satisfying assignments of ``pattern``" —
    the building block of Hanf normal form."""

    pattern: Pattern
    threshold: int = 1

    def holds(self, db: Database) -> bool:
        return count_pattern(self.pattern, db) >= self.threshold


@dataclass
class BoolCombo:
    """Boolean combination of threshold sentences: op in and/or/not."""

    op: str
    children: Tuple[Any, ...]

    def holds(self, db: Database) -> bool:
        if self.op == "and":
            return all(c.holds(db) for c in self.children)
        if self.op == "or":
            return any(c.holds(db) for c in self.children)
        if self.op == "not":
            return not self.children[0].holds(db)
        raise MalformedQueryError(f"unknown boolean op {self.op!r}")


def model_check_sentence(sentence, db: Database) -> bool:
    """Evaluate a Hanf-normal-form sentence: a ThresholdSentence or a
    BoolCombo tree over them.  Linear in ||D|| for fixed sentence on
    bounded-degree classes."""
    return sentence.holds(db)
