"""Constant-delay enumeration of free-connex ACQs (Theorem 4.6).

Preprocessing (all linear in ||D|| for a fixed query):

1. check free-connexity (quantified star size <= 1, Definition 4.26);
2. run the full reducer over a join tree of the query — afterwards every
   remaining tuple of every atom participates in a full answer;
3. decompose the hypergraph into S-components (S = free variables); for
   each component with free part F_i, star size 1 plus conformality of
   acyclic hypergraphs guarantees some atom's variable set contains F_i —
   project that atom's reduced relation onto F_i, obtaining
   P_i = pi_{F_i}(phi(D));
4. atoms entirely over free variables contribute their reduced relations
   directly (the psi_0 part of Section 4.4).

Because quantified variables never cross S-components,

    phi(D)  =  join of the P_i,

a quantifier-free acyclic full join over the free variables — the
"only the join R(x1,x2) /\\ S'(x2,x3) remains" step of Figure 1 — which
:class:`~repro.enumeration.full_acyclic.FullJoinEnumerator` emits with
delay independent of ||D||.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.data.database import Database
from repro.enumeration.base import Answer, Enumerator
from repro.enumeration.full_acyclic import FullJoinEnumerator
from repro.errors import NotFreeConnexError, UnsupportedQueryError
from repro.eval.join import VarRelation
from repro.eval.yannakakis import full_reducer
from repro.hypergraph.components import s_components
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable


def derive_free_join(cq: ConjunctiveQuery, db: Database,
                     engine=None) -> List[VarRelation]:
    """The derived quantifier-free join: relations over free variables whose
    natural join equals phi(D).  Raises NotFreeConnexError if the query's
    star size exceeds 1.

    The preprocessing bulk work (materialisation, full reduction,
    projections) runs on the selected backend; the returned relations
    keep that representation (both satisfy the enumerator's probe
    interface)."""
    free = cq.free_variables()
    _tree, reduced = full_reducer(cq, db, engine=engine)
    h = cq.hypergraph()

    derived: List[VarRelation] = []
    # psi_0: atoms entirely over free variables keep their reduced relation
    for i, atom in enumerate(cq.atoms):
        if atom.variable_set() <= free:
            derived.append(reduced[i])

    components = s_components(h, free)
    obs.count("free_connex.s_components", len(components))
    # one projected relation per S-component
    for comp in components:
        f_vars = tuple(sorted(comp.s_vertices, key=lambda v: v.name))
        if not f_vars:
            # a fully quantified component: contributes satisfiability only,
            # already enforced by the full reducer (empty relations)
            if any(len(reduced[i]) == 0 for i in comp.edge_indexes):
                derived.append(VarRelation(()))  # empty -> no answers
            continue
        carrier = None
        for i, atom in enumerate(cq.atoms):
            if frozenset(f_vars) <= atom.variable_set():
                carrier = i
                break
        if carrier is None:
            raise NotFreeConnexError(
                f"component free variables {[v.name for v in f_vars]} are not "
                f"covered by a single atom: query {cq!r} is not free-connex"
            )
        derived.append(reduced[carrier].project(f_vars))

    # an empty list is possible for satisfiable Boolean queries: every
    # component was fully quantified and non-empty, so there is nothing
    # left to join and the query is simply true
    return derived


class FreeConnexEnumerator(Enumerator):
    """Linear-preprocessing, constant-delay enumeration of a free-connex
    acyclic conjunctive query (without comparisons)."""

    def __init__(self, cq: ConjunctiveQuery, db: Database, engine=None,
                 block_size: Optional[int] = None):
        super().__init__()
        if cq.has_comparisons():
            raise UnsupportedQueryError(
                "use DisequalityEnumerator for queries with comparison atoms"
            )
        if not cq.is_acyclic():
            raise NotFreeConnexError(f"query {cq!r} is not acyclic")
        self.cq = cq
        self.db = db
        self.engine = engine
        self.block_size = block_size
        self._inner: Optional[FullJoinEnumerator] = None
        self._boolean_true = False

    def _preprocess(self) -> None:
        # the whole preprocessing output (Boolean verdict or a prepared
        # inner enumerator) is plan-cached: a preprocessed
        # FullJoinEnumerator is immutable and restartable, so repeated
        # queries against an unchanged database skip reduction,
        # projection and probe-structure builds entirely
        from repro.core.plancache import cached_plan
        from repro.engine import resolve_engine
        from repro.engine.enumerate import resolve_block_size

        eng = resolve_engine(self.engine)
        block = resolve_block_size(self.block_size)
        kind, payload = cached_plan("free_connex", self.cq, self.db,
                                    eng.name, self._build_plan,
                                    extra=(block,) + eng.plan_key())
        if kind == "bool":
            self._boolean_true = payload
        else:
            self._inner = payload

    def _build_plan(self):
        cq, db = self.cq, self.db
        with obs.span("free_connex.derive_join"):
            derived = derive_free_join(cq, db, engine=self.engine)
        if cq.is_boolean():
            # satisfiable iff no derived relation is empty (full reduction
            # has already propagated emptiness everywhere)
            return ("bool", all(len(r) > 0 for r in derived))
        # zero-ary relations are Boolean verdicts of fully quantified
        # S-components: an empty one falsifies the whole query, a
        # non-empty one is vacuous — either way they leave the join
        zero_ary = [r for r in derived if len(r.variables) == 0]
        if any(len(r) == 0 for r in zero_ary):
            return ("enum", None)
        derived = [r for r in derived if len(r.variables) > 0]
        inner = FullJoinEnumerator(derived, self.cq.head, reduce=True,
                                   block_size=self.block_size,
                                   engine=self.engine)
        inner.preprocess()
        return ("enum", inner)

    def _enumerate(self) -> Iterator[Answer]:
        if self.cq.is_boolean():
            if self._boolean_true:
                yield ()
            return
        if self._inner is None:
            return
        yield from self._inner._enumerate()
