"""Baseline (naive) evaluation.

Two engines, both exact on their whole fragment and used as ground truth:

* :func:`evaluate_cq_naive` — backtracking join for conjunctive queries
  (with comparisons).  Worst case ``||D||^{#atoms}``; a greedy
  most-bound-first atom order keeps typical instances fast.
* :func:`evaluate_fo` / :func:`model_check_fo` — structural recursion for
  full FO, cost ``||D||^{quantifier depth}`` — the generic
  ``||phi|| * ||D||^h`` upper bound the paper recalls at the start of
  Section 3.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database
from repro.errors import UnsupportedQueryError
from repro.logic.atoms import Atom, Comparison
from repro.logic.cq import ConjunctiveQuery
from repro.logic.fo import (
    And,
    CompareAtom,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelAtom,
    SOAtom,
)
from repro.logic.terms import Constant, Variable

Assignment = Dict[Variable, Any]


# ------------------------------------------------------------------ CQ engine


def _atom_order(cq: ConjunctiveQuery, db: Database) -> List[Atom]:
    """Greedy join order: repeatedly pick the atom sharing most variables
    with those already placed, tie-break on smaller relation."""
    remaining = list(cq.atoms)
    ordered: List[Atom] = []
    bound: Set[Variable] = set()
    while remaining:
        def score(atom: Atom) -> Tuple[int, int]:
            vs = atom.variable_set()
            return (-len(vs & bound), len(db.relation(atom.relation)))

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variable_set()
    return ordered


def satisfying_assignments(cq: ConjunctiveQuery, db: Database) -> Iterator[Assignment]:
    """All assignments of *all* variables satisfying the body (no
    projection, duplicates by construction impossible)."""
    ordered = _atom_order(cq, db)
    comparisons = list(cq.comparisons)

    def comparisons_ready(assignment: Assignment, pending: List[Comparison]
                          ) -> Optional[List[Comparison]]:
        """Evaluate comparisons whose variables are all bound; None = failed."""
        still: List[Comparison] = []
        for comp in pending:
            if all(v in assignment for v in comp.variables()):
                if not comp.evaluate(assignment):
                    return None
            else:
                still.append(comp)
        return still

    def backtrack(i: int, assignment: Assignment, pending: List[Comparison]
                  ) -> Iterator[Assignment]:
        if i == len(ordered):
            yield dict(assignment)
            return
        atom = ordered[i]
        rel = db.relation(atom.relation)
        bound_positions: List[int] = []
        key: List[Any] = []
        for pos, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                bound_positions.append(pos)
                key.append(term.value)
            elif term in assignment:
                bound_positions.append(pos)
                key.append(assignment[term])
        for t in rel.probe(bound_positions, key) if bound_positions else rel:
            if not atom.matches(t):
                continue
            binding = atom.bind(t)
            new_vars = [v for v in binding if v not in assignment]
            assignment.update({v: binding[v] for v in new_vars})
            next_pending = comparisons_ready(assignment, pending)
            if next_pending is not None:
                yield from backtrack(i + 1, assignment, next_pending)
            for v in new_vars:
                del assignment[v]

    yield from backtrack(0, {}, comparisons)


def evaluate_cq_naive(cq: ConjunctiveQuery, db: Database) -> Set[Tuple[Any, ...]]:
    """phi(D) as a set of head tuples, by exhaustive backtracking."""
    out: Set[Tuple[Any, ...]] = set()
    for assignment in satisfying_assignments(cq, db):
        out.add(tuple(assignment[v] for v in cq.head))
    return out


def cq_is_satisfiable_naive(cq: ConjunctiveQuery, db: Database) -> bool:
    """Boolean answering by backtracking (stops at the first witness)."""
    for _ in satisfying_assignments(cq, db):
        return True
    return False


# ------------------------------------------------------------------ FO engine


SOAssignment = Dict[Any, Set[Tuple[Any, ...]]]


def evaluate_fo(formula: Formula, db: Database,
                assignment: Optional[Assignment] = None,
                so_assignment: Optional[SOAssignment] = None) -> bool:
    """Truth of ``formula`` under a total assignment of its free variables.

    ``so_assignment`` maps each free second-order variable to a set of
    tuples.  Cost is ``O(||D||^q)`` with q the quantifier depth.
    """
    assignment = assignment or {}
    so_assignment = so_assignment or {}

    def value(term) -> Any:
        if isinstance(term, Constant):
            return term.value
        if term not in assignment:
            raise UnsupportedQueryError(f"unbound variable {term!r} in FO evaluation")
        return assignment[term]

    def rec(f: Formula) -> bool:
        if isinstance(f, RelAtom):
            rel = db.relation(f.atom.relation)
            return tuple(value(t) for t in f.atom.terms) in rel
        if isinstance(f, CompareAtom):
            return f.comparison.evaluate(
                {v: assignment[v] for v in f.comparison.variables()}
            )
        if isinstance(f, SOAtom):
            interp = so_assignment.get(f.so_var)
            if interp is None:
                raise UnsupportedQueryError(
                    f"free second-order variable {f.so_var!r} has no interpretation"
                )
            return tuple(value(t) for t in f.terms) in interp
        if isinstance(f, Not):
            return not rec(f.child)
        if isinstance(f, And):
            return all(rec(c) for c in f.operands)
        if isinstance(f, Or):
            return any(rec(c) for c in f.operands)
        if isinstance(f, (Exists, ForAll)):
            variables = f.variables
            domain = db.domain

            def try_all(i: int) -> bool:
                if i == len(variables):
                    return rec(f.child)
                v = variables[i]
                previous = assignment.get(v, _MISSING)
                results = (
                    any(_bind_and(try_all, assignment, v, d, i) for d in domain)
                    if isinstance(f, Exists)
                    else all(_bind_and(try_all, assignment, v, d, i) for d in domain)
                )
                if previous is _MISSING:
                    assignment.pop(v, None)
                else:
                    assignment[v] = previous
                return results

            return try_all(0)
        raise UnsupportedQueryError(f"unknown FO node {f!r}")

    return rec(formula)


_MISSING = object()


def _bind_and(fn, assignment: Assignment, v: Variable, d: Any, i: int) -> bool:
    assignment[v] = d
    return fn(i + 1)


def model_check_fo(formula: Formula, db: Database,
                   so_assignment: Optional[SOAssignment] = None) -> bool:
    """D |= phi for a sentence (no free FO variables)."""
    if formula.free_variables():
        raise UnsupportedQueryError(
            f"model checking needs a sentence; free variables: "
            f"{sorted(v.name for v in formula.free_variables())}"
        )
    return evaluate_fo(formula, db, {}, so_assignment)


def fo_answers(formula: Formula, db: Database,
               head: Optional[Sequence[Variable]] = None,
               so_assignment: Optional[SOAssignment] = None
               ) -> Set[Tuple[Any, ...]]:
    """phi(D) for a formula with free first-order variables, by brute
    force over the domain (||D||^{#free} candidates)."""
    free = sorted(formula.free_variables(), key=lambda v: v.name) if head is None else list(head)
    out: Set[Tuple[Any, ...]] = set()
    domain = db.domain

    def assign(i: int, current: Assignment) -> None:
        if i == len(free):
            if evaluate_fo(formula, db, dict(current), so_assignment):
                out.add(tuple(current[v] for v in free))
            return
        for d in domain:
            current[free[i]] = d
            assign(i + 1, current)
        current.pop(free[i], None)

    assign(0, {})
    return out
