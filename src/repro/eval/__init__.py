"""Query evaluation engines.

* :mod:`~repro.eval.join` — variable-indexed relations and the relational
  operators (hash join, semijoin, projection) everything else composes;
* :mod:`~repro.eval.naive` — baseline evaluation of CQs (backtracking) and
  of full FO (structural recursion): correct on everything, used as the
  ground truth in tests and as the "no structure exploited" baseline in
  benchmarks;
* :mod:`~repro.eval.yannakakis` — the full reducer and Yannakakis' output-
  sensitive evaluation of acyclic queries (Theorem 4.2);
* :mod:`~repro.eval.modelcheck` — Boolean query answering dispatch.
"""

from repro.eval.join import VarRelation
from repro.eval.naive import evaluate_cq_naive, evaluate_fo, model_check_fo
from repro.eval.yannakakis import full_reducer, yannakakis, yannakakis_boolean

__all__ = [
    "VarRelation",
    "evaluate_cq_naive",
    "evaluate_fo",
    "model_check_fo",
    "full_reducer",
    "yannakakis",
    "yannakakis_boolean",
]
