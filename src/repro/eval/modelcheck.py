"""Boolean query answering dispatch.

Routes a Boolean query to the cheapest applicable engine:

* acyclic CQ -> Yannakakis semijoin pass, O(||phi|| * ||D||);
* cyclic CQ -> backtracking join (exponential in the query only);
* beta-acyclic NCQ -> nest-point Davis-Putnam (quasi-linear, Thm 4.31);
* other NCQ / FO sentences -> naive structural recursion.
"""

from __future__ import annotations

from typing import Union

from repro.data.database import Database
from repro.errors import UnsupportedQueryError
from repro.eval.naive import cq_is_satisfiable_naive, model_check_fo
from repro.eval.yannakakis import yannakakis_boolean
from repro.logic.cq import ConjunctiveQuery
from repro.logic.fo import Formula
from repro.logic.ncq import NegativeConjunctiveQuery
from repro.logic.ucq import UnionOfConjunctiveQueries


def model_check(query, db: Database) -> bool:
    """Does D satisfy the (Boolean) query?"""
    if isinstance(query, ConjunctiveQuery):
        if not query.is_boolean():
            raise UnsupportedQueryError("model_check expects a Boolean query")
        if query.has_comparisons():
            return cq_is_satisfiable_naive(query, db)
        if query.is_acyclic():
            return yannakakis_boolean(query, db)
        return cq_is_satisfiable_naive(query, db)
    if isinstance(query, UnionOfConjunctiveQueries):
        return any(model_check(d, db) for d in query.disjuncts)
    if isinstance(query, NegativeConjunctiveQuery):
        from repro.csp.ncq_solver import decide_ncq

        return decide_ncq(query, db)
    if isinstance(query, Formula):
        return model_check_fo(query, db)
    raise UnsupportedQueryError(f"cannot model-check object of type {type(query).__name__}")
