"""Yannakakis' algorithm for acyclic conjunctive queries (Theorem 4.2).

Three entry points:

* :func:`full_reducer` — the semijoin program: a bottom-up then top-down
  pass of semijoins along a join tree.  Afterwards the node relations are
  *globally consistent*: every tuple of every node participates in at
  least one satisfying assignment of the whole body.  Cost O(||phi||
  * ||D||) up to hashing.
* :func:`yannakakis_boolean` — Boolean answering: the query is satisfiable
  iff no relation becomes empty during the bottom-up pass.
* :func:`yannakakis` — full output-sensitive evaluation: after reduction,
  a bottom-up join keeps, at each node, only the columns that are free or
  still needed higher up, so intermediate results stay within
  O(||D|| * ||phi(D)||), giving total time O(||phi|| * ||D|| * ||phi(D)||).

All entry points accept an ``engine`` (a backend name, an
:class:`~repro.engine.Engine`, or None for the process-wide selection —
see :mod:`repro.engine`) and an optional prebuilt ``tree``; with no tree
given, one is built once per hypergraph and memoised
(:func:`repro.hypergraph.jointree.cached_join_tree`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro import obs
from repro.data.database import Database
from repro.errors import NotAcyclicError
from repro.eval.join import VarRelation, atom_to_varrelation
from repro.hypergraph.jointree import JoinTree, build_join_tree, cached_join_tree
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable

EngineLike = Union[str, None, "object"]


def _engine(engine: EngineLike):
    from repro.engine import resolve_engine

    return resolve_engine(engine)


def materialise_atoms(cq: ConjunctiveQuery, db: Database,
                      engine: EngineLike = None) -> List[VarRelation]:
    """One relation per atom (constants/repeated variables resolved),
    in the selected backend's representation."""
    eng = _engine(engine)
    with obs.span("yannakakis.materialise_atoms", atoms=len(cq.atoms),
                  engine=eng.name) as sp:
        out = [eng.materialise_atom(db, atom) for atom in cq.atoms]
        sp.set("rows", sum(len(r) for r in out))
        return out


def _traced_semijoin(left: VarRelation, right: VarRelation, phase: str,
                     node: int) -> VarRelation:
    """One semijoin pass step, with input/output cardinalities recorded
    on the span when tracing is live (plain call otherwise)."""
    if not obs.enabled():
        return left.semijoin(right)
    with obs.span("yannakakis.semijoin", phase=phase, node=node) as sp:
        sp.set("in_left", len(left))
        sp.set("in_right", len(right))
        out = left.semijoin(right)
        sp.set("out", len(out))
        return out


def _semijoin_signature(target: VarRelation, source: VarRelation):
    """What a semijoin pass *does* to ``target``, up to provable equality.

    A semijoin keeps the target rows whose shared-variable values occur
    in the source — it depends only on the source's shared-column
    contents.  Identifying those contents by ``(variable, array
    identity, row count)`` is sound because columnar relations never
    mutate a published column array (reductions build fresh arrays), and
    it is exactly what per-symbol sharing makes useful: a k-atom
    self-join's materialisations alias the *same* arrays, so k-1 of the
    reduction passes against them are provably identical.  ``None``
    (never coalesce) for tuple-backed relations and for passes with no
    shared variables (those enforce emptiness, not membership).
    """
    column = getattr(source, "column", None)
    if column is None:
        return None
    shared = [v for v in source.variables if target.has_variable(v)]
    if not shared:
        return None
    n = len(source)
    return tuple((v, id(column(v)), n) for v in shared)


def full_reducer(cq: ConjunctiveQuery, db: Database,
                 tree: Optional[JoinTree] = None,
                 relations: Optional[List[VarRelation]] = None,
                 engine: EngineLike = None
                 ) -> Tuple[JoinTree, List[VarRelation]]:
    """Run the full semijoin reduction.

    Returns the join tree used and the list of reduced relations (indexed
    like ``cq.atoms``).  Raises :class:`NotAcyclicError` on cyclic queries.

    With neither ``tree`` nor ``relations`` given, the result is served
    from the plan cache (:mod:`repro.core.plancache`) when an entry for
    (query, engine, database state) exists; the reduced relations are
    returned as shallow copies, so callers may index or mutate them
    without corrupting the cache.
    """
    if tree is None and relations is None:
        from repro.core.plancache import (cached_plan, incremental_enabled,
                                          plan_cache_enabled)
        from repro.logic.selfjoin import selfjoin_signature

        eng = _engine(engine)
        # fold the self-join structure into the key material: a plan for
        # a repeated-symbol query carries cross-atom shared artefacts
        # (aliased columns, coalesced passes), and the explicit signature
        # keeps that visible in cache introspection
        extra = eng.plan_key()
        sj = selfjoin_signature(cq)
        if sj:
            extra = extra + (("selfjoin", sj),)
        if incremental_enabled() and plan_cache_enabled():
            from repro.dynamic.delta import DeltaReducer

            # delta-propagated reduction: the cached artefact is a
            # DeltaReducer whose emitted relations are byte-identical
            # (contents and row order) to _full_reduce's on this engine;
            # updates refresh it through the per-relation delta logs
            # instead of re-materialising ||D||.  A distinct plan kind
            # keeps the stateful entries apart from the cold ones when
            # incremental mode is toggled mid-process.
            if DeltaReducer.supports(cq, eng):
                state = cached_plan(
                    "full_reducer_inc", cq, db, eng.name,
                    lambda: DeltaReducer.build(cq, db, eng),
                    extra=extra,
                    refresher=lambda st, deltas: st.refreshed(deltas))
                tree, reduced = state.result()
                return tree, [r.copy() for r in reduced]
        # the engine's plan_key folds the shard configuration (worker
        # count, fallback threshold) into the cache key: a reduction
        # computed under one fan-out must not serve another
        tree, reduced = cached_plan(
            "full_reducer", cq, db, eng.name,
            lambda: _full_reduce(cq, db, cached_join_tree(cq.hypergraph()),
                                 materialise_atoms(cq, db, eng), engine=eng),
            extra=extra)
        return tree, [r.copy() for r in reduced]
    if tree is None:
        tree = cached_join_tree(cq.hypergraph())
    if relations is None:
        relations = materialise_atoms(cq, db, engine)
    return _full_reduce(cq, db, tree, relations, engine=engine)


def _full_reduce(cq: ConjunctiveQuery, db: Database, tree: JoinTree,
                 relations: List[VarRelation],
                 engine: EngineLike = None
                 ) -> Tuple[JoinTree, List[VarRelation]]:
    relations = list(relations)
    eng = _engine(engine)
    # the parallel backend shards every semijoin step across its worker
    # pool (above its tuple-count threshold); the result is byte-identical
    # to the serial passes below, so callers never see the difference
    parallel = getattr(eng, "parallel_reduce", None)
    if parallel is not None and eng.should_parallelise(relations):
        return tree, parallel(tree, relations)
    from repro.engine.symbols import sharing_enabled

    # coalesce provably-identical passes: once a target was reduced by a
    # source with these exact shared-column identities, repeating the
    # pass is a no-op — semijoins only remove rows, and membership of
    # the surviving rows in the (unchanged) source is already
    # established.  Skipping keeps the same relation object, so contents
    # and row order are untouched.  Disabled with the sharing
    # kill-switch: this is a symbol-sharing payoff (distinct atoms only
    # alias columns when materialisation shared them) and the per-atom
    # bench arm must pay every pass.
    coalesce = sharing_enabled()
    applied: Dict[int, set] = {}

    def _reduce_step(target: int, source: int, phase: str) -> None:
        if coalesce:
            sig = _semijoin_signature(relations[target], relations[source])
            if sig is not None:
                seen = applied.setdefault(target, set())
                if sig in seen:
                    obs.count("yannakakis.coalesced_semijoins")
                    return
                seen.add(sig)
        relations[target] = _traced_semijoin(
            relations[target], relations[source], phase, target)

    with obs.span("yannakakis.full_reduce", nodes=len(relations)) as sp:
        sp.set("rows_in", sum(len(r) for r in relations))
        # bottom-up: parent := parent semijoin child
        for node in tree.bottom_up():
            parent = tree.parent[node]
            if parent is not None:
                _reduce_step(parent, node, "bottom_up")
        # top-down: child := child semijoin parent
        for node in tree.top_down():
            for child in tree.children[node]:
                _reduce_step(child, node, "top_down")
        sp.set("rows_out", sum(len(r) for r in relations))
    return tree, relations


def yannakakis_boolean(cq: ConjunctiveQuery, db: Database,
                       tree: Optional[JoinTree] = None,
                       engine: EngineLike = None) -> bool:
    """Satisfiability of an acyclic (Boolean or not) body in O(||phi||*||D||)."""
    if tree is None:
        tree = cached_join_tree(cq.hypergraph())
    relations = materialise_atoms(cq, db, engine)
    if any(len(r) == 0 for r in relations):
        return False
    for node in tree.bottom_up():
        parent = tree.parent[node]
        if parent is not None:
            relations[parent] = _traced_semijoin(
                relations[parent], relations[node], "boolean_bottom_up", parent)
            if len(relations[parent]) == 0:
                return False
    return all(len(relations[n]) > 0 for n in tree.nodes())


def yannakakis(cq: ConjunctiveQuery, db: Database,
               tree: Optional[JoinTree] = None,
               engine: EngineLike = None) -> VarRelation:
    """Compute phi(D) for an acyclic CQ, output-sensitively (Theorem 4.2).

    After full reduction, join bottom-up; at each node project onto the
    variables that are free or shared with the not-yet-joined part, which
    bounds intermediates by ||D|| * ||phi(D)||.
    """
    tree, relations = full_reducer(cq, db, tree=tree, engine=engine)
    free = cq.free_variables()

    # variables occurring above each node (in its strict ancestors' atoms)
    above: Dict[int, FrozenSet[Variable]] = {}
    order = tree.top_down()
    for node in order:
        parent = tree.parent[node]
        if parent is None:
            above[node] = frozenset()
        else:
            above[node] = above[parent] | tree.hypergraph.edges[parent]

    joined: Dict[int, VarRelation] = {}
    with obs.span("yannakakis.join_project", nodes=len(order)) as sp:
        sp.set("rows_in", sum(len(r) for r in relations))
        for node in tree.bottom_up():
            acc = relations[node]
            for child in tree.children[node]:
                acc = acc.join(joined[child])
            keep = [
                v for v in acc.variables
                if v in free or v in above[node]
            ]
            joined[node] = acc.project(keep)
        sp.set("rows_out", len(joined[tree.root]))

    result = joined[tree.root]
    # normalise column order to the head with one projection (head
    # variables are exactly the free variables, all retained above)
    head = tuple(cq.head)
    if result.variables == head:
        return result
    return result.project(head)


def acyclic_answers(cq: ConjunctiveQuery, db: Database,
                    engine: EngineLike = None) -> Set[Tuple]:
    """phi(D) as a set of head tuples (convenience wrapper)."""
    return set(yannakakis(cq, db, engine=engine))
