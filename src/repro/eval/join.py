"""Variable-indexed relations and relational operators.

A :class:`VarRelation` is a relation whose columns are named by query
variables — the working representation inside all join-tree algorithms.
It supports hash-join, semijoin and projection, and builds per-variable-
subset hash indexes lazily (mirroring :class:`repro.data.relation.Relation`
but keyed by variables instead of positions).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database
from repro.errors import SchemaMismatchError
from repro.logic.atoms import Atom
from repro.logic.terms import Variable

Tup = Tuple[Any, ...]


class VarRelation:
    """A relation over an ordered tuple of variables."""

    __slots__ = ("variables", "_tuples", "_indexes", "_positions")

    def __init__(self, variables: Sequence[Variable], tuples: Optional[Iterable[Tup]] = None):
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self._positions: Dict[Variable, int] = {v: i for i, v in enumerate(self.variables)}
        if len(self._positions) != len(self.variables):
            raise ValueError("duplicate variables in VarRelation schema")
        self._tuples: Dict[Tup, None] = {}
        self._indexes: Dict[Tuple[Variable, ...], Dict[Tup, List[Tup]]] = {}
        if tuples is not None:
            for t in tuples:
                self.add(t)

    # ----------------------------------------------------------------- basics

    def add(self, tup: Tup) -> None:
        t = tuple(tup)
        if len(t) != len(self.variables):
            raise ValueError(
                f"tuple length {len(t)} does not match schema {self.variables}"
            )
        if t not in self._tuples:
            self._tuples[t] = None
            for vars_key, index in self._indexes.items():
                key = tuple(t[self._positions[v]] for v in vars_key)
                index.setdefault(key, []).append(t)

    def __iter__(self) -> Iterator[Tup]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, tup: Tup) -> bool:
        return tuple(tup) in self._tuples

    def __repr__(self) -> str:
        names = ",".join(v.name for v in self.variables)
        return f"VarRelation([{names}], size={len(self)})"

    def position(self, v: Variable) -> int:
        return self._positions[v]

    def has_variable(self, v: Variable) -> bool:
        return v in self._positions

    def assignment(self, tup: Tup) -> Dict[Variable, Any]:
        return {v: tup[i] for i, v in enumerate(self.variables)}

    def tuples(self) -> List[Tup]:
        return list(self._tuples)

    # --------------------------------------------------------------- indexing

    def index_on(self, variables: Sequence[Variable]) -> Dict[Tup, List[Tup]]:
        vars_key = tuple(variables)
        if vars_key not in self._indexes:
            positions = [self._positions[v] for v in vars_key]
            index: Dict[Tup, List[Tup]] = {}
            for t in self._tuples:
                index.setdefault(tuple(t[p] for p in positions), []).append(t)
            self._indexes[vars_key] = index
        return self._indexes[vars_key]

    def probe(self, variables: Sequence[Variable], key: Sequence[Any]) -> List[Tup]:
        """Tuples agreeing with ``key`` on ``variables`` — O(1) + output."""
        return self.index_on(tuple(variables)).get(tuple(key), [])

    def probe_assignment(self, assignment: Dict[Variable, Any]) -> List[Tup]:
        """Tuples consistent with the bound part of ``assignment``."""
        bound = tuple(v for v in self.variables if v in assignment)
        key = tuple(assignment[v] for v in bound)
        return self.probe(bound, key)

    # -------------------------------------------------------------- operators

    def project(self, variables: Sequence[Variable]) -> "VarRelation":
        vars_out = tuple(variables)
        positions = [self._positions[v] for v in vars_out]
        out = VarRelation(vars_out)
        for t in self._tuples:
            out.add(tuple(t[p] for p in positions))
        return out

    def semijoin(self, other: "VarRelation") -> "VarRelation":
        """Tuples of self that agree with some tuple of other on the shared
        variables.  If no variables are shared, the semijoin keeps everything
        when ``other`` is non-empty and nothing otherwise."""
        shared = [v for v in self.variables if other.has_variable(v)]
        if not shared:
            return self.copy() if len(other) else VarRelation(self.variables)
        other_index = other.index_on(shared)
        positions = [self._positions[v] for v in shared]
        out = VarRelation(self.variables)
        for t in self._tuples:
            if tuple(t[p] for p in positions) in other_index:
                out.add(t)
        return out

    def join(self, other: "VarRelation") -> "VarRelation":
        """Natural hash join."""
        shared = [v for v in self.variables if other.has_variable(v)]
        extra = [v for v in other.variables if v not in self._positions]
        out_vars = self.variables + tuple(extra)
        out = VarRelation(out_vars)
        other_index = other.index_on(shared)
        self_positions = [self._positions[v] for v in shared]
        extra_positions = [other.position(v) for v in extra]
        for t in self._tuples:
            key = tuple(t[p] for p in self_positions)
            for u in other_index.get(key, []):
                out.add(t + tuple(u[p] for p in extra_positions))
        return out

    def copy(self) -> "VarRelation":
        out = VarRelation(self.variables)
        out._tuples = dict(self._tuples)
        return out

    def rename(self, mapping: Dict[Variable, Variable]) -> "VarRelation":
        """Rename columns along ``mapping`` (variables not mapped keep
        their name); tuples with conflicting merged columns are dropped."""
        new_vars: List[Variable] = []
        for v in self.variables:
            nv = mapping.get(v, v)
            if nv not in new_vars:
                new_vars.append(nv)
        out = VarRelation(new_vars)
        for t in self._tuples:
            values: Dict[Variable, Any] = {}
            ok = True
            for v, val in zip(self.variables, t):
                nv = mapping.get(v, v)
                if nv in values and values[nv] != val:
                    ok = False
                    break
                values[nv] = val
            if ok:
                out.add(tuple(values[v] for v in new_vars))
        return out


def atom_to_varrelation(db: Database, atom: Atom) -> VarRelation:
    """Materialise an atom against the database.

    Handles constants and repeated variables: only matching tuples
    contribute, and the result's schema is the atom's distinct variables in
    first-occurrence order.  Constant positions are answered with one
    :meth:`Relation.index_on` probe (O(1) amortised — a fully-bound atom
    never scans the relation), and repeated-variable constraints without
    constants enumerate only the diagonal buckets of an index over the
    repeated positions.
    """
    from repro.logic.terms import Constant

    rel = db.relation(atom.relation)
    if rel.arity != atom.arity:
        raise SchemaMismatchError(
            f"atom {atom!r} has arity {atom.arity} but relation "
            f"{atom.relation!r} has arity {rel.arity}"
        )
    variables = atom.variables()
    first_pos: Dict[Variable, int] = {}
    const_positions: List[int] = []
    const_key: List[Any] = []
    dup_groups: Dict[int, List[int]] = {}
    for pos, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            const_positions.append(pos)
            const_key.append(term.value)
        elif term in first_pos:
            dup_groups.setdefault(first_pos[term], []).append(pos)
        else:
            first_pos[term] = pos
    out_positions = [first_pos[v] for v in variables]

    if const_positions:
        candidates: Iterable[Tup] = rel.probe(const_positions, const_key)
    elif dup_groups:
        # no constants to probe: use an index over one repeated group and
        # keep only its diagonal buckets (key values all equal)
        base, extras = next(iter(dup_groups.items()))
        index = rel.index_on((base, *extras))
        candidates = [
            t
            for key, bucket in index.items()
            if all(k == key[0] for k in key)
            for t in bucket
        ]
    else:
        candidates = rel

    out = VarRelation(variables)
    if dup_groups:
        checks = list(dup_groups.items())
        for t in candidates:
            if all(t[p] == t[b] for b, ps in checks for p in ps):
                out.add(tuple(t[p] for p in out_positions))
    else:
        for t in candidates:
            out.add(tuple(t[p] for p in out_positions))
    return out


def product(relations: Sequence[VarRelation]) -> VarRelation:
    """Natural join of a list of relations, left to right."""
    if not relations:
        return VarRelation((), [()])
    acc = relations[0].copy()
    for r in relations[1:]:
        acc = acc.join(r)
    return acc
