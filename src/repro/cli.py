"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``classify``
    Print the complexity report of a query::

        python -m repro classify "Q(x, y) :- R(x, z), S(z, y)"

``run``
    Evaluate a query against a database loaded from CSV files (one file
    per relation, named <Relation>.csv, comma-separated values; integers
    are parsed as such)::

        python -m repro run "Q(x) :- R(x, z), S(z, y)" --data ./tables \\
            [--count | --limit N]

``explain``
    Evaluate a query under tracing and print the span tree: plan-cache
    hits/misses, per-phase timings (preprocessing vs enumeration) and
    kernel counters.  Runs against ``--data`` or a synthetic database::

        python -m repro explain "Q(x) :- R(x, z), S(z, y)"

``analyze``
    Estimated vs actual: run one query under full instrumentation
    (twice, at n and 2n, when the data is synthetic) and print
    per-operator rows comparing measured cardinalities and timings
    against the classifier's predicted class::

        python -m repro analyze "Q(x) :- R(x, z), S(z, y)" [--html FILE]

``figures``
    Regenerate the paper's three figures as text.

``bench``
    Run the built-in complexity suites (free-connex delay, acyclic
    total time, Algorithm 2 delay, the triangle lower bound), record
    every case into ``benchmarks/history/*.jsonl`` under the canonical
    observatory schema, and print the verdict table (measured log-log
    slope + CI vs the shape the classifier predicts)::

        python -m repro bench --quick

    ``--gate fail`` turns a regression against the rolling baseline
    into a nonzero exit code (default: warn only).

``report``
    Render the benchmark history as a self-contained HTML/SVG dashboard
    (trajectories, scaling sweeps, verdicts, regression flags)::

        python -m repro report -o report.html [--gate fail]

``bench-delay``
    Quick built-in delay experiment: free-connex vs Algorithm 2 on
    synthetic data of a given size.

``metrics-serve``
    Serve the process-wide always-on metrics registry as an OpenMetrics
    endpoint (``/metrics``), optionally flushing the exposition text to
    a file on a timer and writing discrete events to a rotating NDJSON
    log::

        python -m repro metrics-serve --port 9464 \\
            [--metrics-out metrics.prom --interval 10] [--events ev.ndjson]

``top``
    Live terminal view of the registry: per-plan delay quantiles,
    phase latencies, counter rates, recent events — either in-process
    or scraped from a ``metrics-serve`` endpoint via ``--url``.

``run``, ``explain`` and the benchmarks accept ``--trace FILE`` (Chrome
trace-event JSON for chrome://tracing / Perfetto) and ``--metrics``
(flat JSON counters/gauges on stderr); the ``REPRO_TRACE`` environment
variable does the same without flags.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, List, Optional, Sequence

from repro.data.database import Database
from repro.data.relation import Relation


def _parse_value(text: str) -> Any:
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        return text


def load_csv_database(directory: str) -> Database:
    """Load every ``*.csv`` in ``directory`` as one relation each."""
    db = Database()
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".csv"):
            continue
        rel_name = name[:-4]
        rows: List[tuple] = []
        with open(os.path.join(directory, name)) as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                rows.append(tuple(_parse_value(v) for v in line.split(",")))
        if not rows:
            continue
        rel = Relation(rel_name, len(rows[0]), rows)
        db.add_relation(rel)
    return db


def cmd_classify(args: argparse.Namespace) -> int:
    """Print the complexity report of the given query."""
    from repro.core.classify import classify
    from repro.logic.parser import parse_query

    query = parse_query(args.query)
    print(classify(query).render())
    return 0


def _select_engine(args: argparse.Namespace) -> None:
    """Apply a --engine flag (if given) to the process-wide selection."""
    name = getattr(args, "engine", None)
    if name:
        from repro.engine import set_engine

        set_engine(name)
    workers = getattr(args, "workers", None)
    if workers is not None:
        from repro.engine import set_default_workers

        set_default_workers(workers)
    plan_cache = getattr(args, "plan_cache", None)
    if plan_cache is not None:
        from repro.core.plancache import set_plan_cache_enabled

        set_plan_cache_enabled(plan_cache == "on")
    incremental = getattr(args, "incremental", None)
    if incremental is not None:
        from repro.core.plancache import set_incremental_enabled

        set_incremental_enabled(incremental)


def _add_pipeline_flags(p: argparse.ArgumentParser) -> None:
    """The shared enumeration-pipeline knobs (--engine and friends)."""
    p.add_argument("--engine", default=None,
                   help="relational backend: tuple (default), columnar, "
                        "parallel, or compiled — radix hash kernels, "
                        "numba-JITed when installed, numpy fallback "
                        "otherwise (also via the REPRO_ENGINE "
                        "environment variable)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for the parallel backend "
                        "(default: os.cpu_count(), env REPRO_WORKERS; "
                        "1 disables pool dispatch)")
    p.add_argument("--block-size", type=int, default=None,
                   help="answers per batched emission block on the columnar "
                        "backend (default 1024, env REPRO_BLOCK_SIZE; <= 0 "
                        "forces tuple-at-a-time enumeration)")
    p.add_argument("--plan-cache", choices=("on", "off"), default=None,
                   help="toggle the cross-query plan/preprocessing cache "
                        "(default on, env REPRO_PLAN_CACHE)")
    p.add_argument("--incremental", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="delta-propagated plan maintenance: refresh cached "
                        "plans through per-relation delta logs instead of "
                        "rebuilding after updates (default off, env "
                        "REPRO_INCREMENTAL; needs the plan cache on)")


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    """The shared observability knobs (--trace / --metrics)."""
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a Chrome trace-event JSON of the run "
                        "(open in chrome://tracing or Perfetto); the "
                        "REPRO_TRACE environment variable does the same")
    p.add_argument("--metrics", action="store_true",
                   help="dump flat JSON metrics (counters, gauges, "
                        "plan-cache stats) to stderr after the run")


def _obs_setup(args: argparse.Namespace):
    """Install a fresh tracer when --trace/--metrics ask for one.

    Returns (tracer, previous) to hand to :func:`_obs_finish`; tracer is
    None when neither flag was given (the REPRO_TRACE environment path
    is then still honoured by the obs module itself)."""
    if not (getattr(args, "trace", None) or getattr(args, "metrics", False)):
        return None, None
    from repro import obs

    previous = obs.tracer()
    return obs.enable(), previous


def _obs_finish(args: argparse.Namespace, tracer, previous) -> None:
    """Emit the requested trace/metrics outputs and restore the tracer."""
    if tracer is None:
        return
    import json

    from repro import obs

    if getattr(args, "trace", None):
        obs.write_chrome_trace(args.trace, tracer)
        print(f"wrote trace {args.trace}", file=sys.stderr)
    if getattr(args, "metrics", False):
        print(json.dumps(obs.metrics(tracer), indent=2, sort_keys=True),
              file=sys.stderr)
    if previous is not None and previous.enabled:
        obs.enable(previous)
    else:
        obs.disable()


def cmd_run(args: argparse.Namespace) -> int:
    """Evaluate a query over CSV relations (count, limit supported)."""
    from repro.core.planner import count, enumerate_answers
    from repro.logic.parser import parse_query

    _select_engine(args)
    tracer, previous = _obs_setup(args)
    query = parse_query(args.query)
    db = load_csv_database(args.data)
    try:
        if args.count:
            print(count(query, db))
            return 0
        emitted = 0
        for row in enumerate_answers(query, db, block_size=args.block_size):
            print("\t".join(str(v) for v in row))
            emitted += 1
            if args.limit is not None and emitted >= args.limit:
                break
        if emitted == 0:
            print("(no answers)", file=sys.stderr)
        return 0
    finally:
        _obs_finish(args, tracer, previous)


def _synthetic_database(query, size: int, seed: int) -> Database:
    """A random database matching the query's relation schema (for
    ``explain`` without ``--data``)."""
    from repro.data import generators
    from repro.logic.cq import ConjunctiveQuery
    from repro.logic.ucq import UnionOfConjunctiveQueries

    if isinstance(query, ConjunctiveQuery):
        disjuncts = [query]
    elif isinstance(query, UnionOfConjunctiveQueries):
        disjuncts = list(query.disjuncts)
    else:
        raise SystemExit(
            "explain needs --data for this query class (synthetic data is "
            "only generated for CQs and UCQs)"
        )
    schema: dict = {}
    for d in disjuncts:
        for atom in d.atoms:
            arity = schema.setdefault(atom.relation, atom.arity)
            if arity != atom.arity:
                raise SystemExit(
                    f"relation {atom.relation} used with arities {arity} "
                    f"and {atom.arity}"
                )
    return generators.random_database(schema, max(4, size // 4), size,
                                      seed=seed)


def cmd_explain(args: argparse.Namespace) -> int:
    """Trace one evaluation and print the span tree + counters."""
    from repro import obs
    from repro.core.planner import count, enumerate_answers
    from repro.logic.parser import parse_query

    _select_engine(args)
    query = parse_query(args.query)
    if args.data:
        db = load_csv_database(args.data)
    else:
        db = _synthetic_database(query, args.size, args.seed)
    with obs.capture() as tr:
        if args.count:
            result = count(query, db)
            outcome = f"count: {result}"
        else:
            emitted = 0
            for _row in enumerate_answers(query, db,
                                          block_size=args.block_size):
                emitted += 1
                if args.limit is not None and emitted >= args.limit:
                    break
            outcome = f"answers: {emitted}"
    print(f"query: {query}")
    source = args.data if args.data else \
        f"synthetic ({args.size} tuples/relation, seed {args.seed})"
    print(f"database: {source}")
    print(outcome)
    print()
    print(obs.render_explain(tr))      # footer carries the plan-cache line
    _print_incremental_stats()
    if args.trace:
        obs.write_chrome_trace(args.trace, tr)
        print(f"wrote trace {args.trace}", file=sys.stderr)
    if args.metrics:
        import json

        print(json.dumps(obs.metrics(tr), indent=2, sort_keys=True),
              file=sys.stderr)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Run one query fully instrumented and print the per-operator
    estimated-vs-actual table; ``--html`` renders the panel."""
    from repro.logic.parser import parse_query
    from repro.obs.analyze import analyze, render_text

    _select_engine(args)
    query = parse_query(args.query)
    db = load_csv_database(args.data) if args.data else None
    analysis = analyze(query, db, size=args.size, seed=args.seed,
                       scale=args.scale)
    print(render_text(analysis))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(analysis, fh, indent=2, default=str)
            fh.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    if args.html:
        from repro.obs.report import write_analyze_html

        write_analyze_html(args.html, analysis)
        print(f"wrote {args.html}", file=sys.stderr)
    if args.strict and analysis["flagged"]:
        print(f"analyze: {len(analysis['flagged'])} operator(s) contradict "
              f"the predicted class — failing (--strict)", file=sys.stderr)
        return 1
    return 0


def _print_plan_cache_stats() -> None:
    """Two-line plan-cache health summary (doctor, run/count --metrics)."""
    from repro.core.plancache import plan_cache

    st = plan_cache().stats()
    print(f"plan cache: {st['hits']} hits, {st['misses']} misses, "
          f"{st['evictions']} evictions ({st['entries']} entries, "
          f"maxsize {st['maxsize']})")
    _print_incremental_stats()


def _print_incremental_stats() -> None:
    """The delta-refresh half of the summary (explain prints the
    plan-cache line through the render_explain footer already)."""
    from repro.core.plancache import incremental_enabled, plan_cache

    st = plan_cache().stats()
    print(f"incremental: {st['refreshes']} refreshes, "
          f"{st['refresh_overflows']} delta-log overflows, "
          f"{st['refresh_fallbacks']} refresher fallbacks "
          f"({'on' if incremental_enabled() else 'off'})")


#: timer-overhead sanity window for slope fitting: below 10ns the
#: calibration is suspiciously optimistic (vDSO fast path misreported),
#: above 10µs the clock itself would drown the delays being measured
TIMER_OVERHEAD_SANE_NS = (10, 10_000)

#: machine-noise bar: coefficient of variation of a fixed CPU-bound
#: workload above which log-log slope fits are untrustworthy (shared CI
#: containers routinely exceed it)
NOISE_CV_THRESHOLD = 0.25


def _doctor_environment() -> None:
    """Measurement-health checks: timer-overhead calibration sanity and
    a machine-noise estimate (both surfaced as gauges on the active
    tracer, so ``--metrics`` dumps record them alongside the run)."""
    import statistics as _stats
    import time as _time

    from repro import obs
    from repro.perf.delay import timer_overhead_ns

    overhead = timer_overhead_ns()
    lo, hi = TIMER_OVERHEAD_SANE_NS
    obs.gauge("doctor.timer_overhead_ns", overhead)
    if lo <= overhead <= hi:
        print(f"timer overhead: {overhead} ns (ok, within [{lo}ns, {hi}ns])")
    else:
        print(f"timer overhead: {overhead} ns — WARNING: outside the sane "
              f"window [{lo}ns, {hi}ns]; delay measurements and slope "
              f"fits are unreliable on this machine")
    samples = []
    for _ in range(15):
        start = _time.perf_counter()
        acc = 0
        for i in range(20_000):
            acc += i
        samples.append(_time.perf_counter() - start)
    cv = _stats.stdev(samples) / _stats.fmean(samples)
    obs.gauge("doctor.noise_cv", round(cv, 4))
    obs.gauge("doctor.noise_cv_threshold", NOISE_CV_THRESHOLD)
    if cv <= NOISE_CV_THRESHOLD:
        print(f"machine noise: cv={cv:.3f} over a fixed workload (ok, "
              f"threshold {NOISE_CV_THRESHOLD})")
    else:
        print(f"machine noise: cv={cv:.3f} over a fixed workload — "
              f"WARNING: above {NOISE_CV_THRESHOLD}; this machine (a "
              f"loaded CI container?) is too noisy for trustworthy "
              f"slope fitting, expect inconclusive verdicts")
    _doctor_parallel()


def _doctor_parallel() -> None:
    """Worker-pool health: cpu budget, spawn availability, live pools."""
    import multiprocessing as _mp
    import os as _os

    from repro import obs
    from repro.engine import default_workers, pool_stats

    cpus = _os.cpu_count() or 1
    workers = default_workers()
    obs.gauge("doctor.cpu_count", cpus)
    obs.gauge("doctor.default_workers", workers)
    methods = _mp.get_all_start_methods()
    obs.gauge("doctor.spawn_available", int("spawn" in methods))
    if workers > 1:
        print(f"parallel engine: {workers} workers over {cpus} cpus")
    else:
        print(f"parallel engine: 1 worker over {cpus} cpus — pool "
              f"dispatch disabled, the parallel backend runs serially "
              f"(set REPRO_WORKERS or --workers to force a pool)")
    if "spawn" not in methods:  # pragma: no cover - all tier-1 platforms have it
        print("start methods: WARNING: no 'spawn' support; the parallel "
              "backend cannot start workers on this platform")
    else:
        print(f"start methods: {', '.join(methods)} (pool uses spawn)")
    st = pool_stats()
    if st["pools"]:
        live = ", ".join(f"{w} workers ({'up' if st['alive'][w] else 'down'})"
                         for w in st["pools"])
        print(f"live pools: {live}")
    _doctor_caches()


def _doctor_caches() -> None:
    """Cache-health lines from the always-on registry: worker-arena
    cache, pool lifecycle, per-symbol workspaces, watchdog."""
    from repro import obs
    from repro.engine import get_engine
    from repro.engine.parallel import arena_cache_stats
    from repro.engine.symbols import sharing_enabled

    reg = obs.registry()
    arena = arena_cache_stats()
    print(f"arena cache: {arena['entries']} entries, {arena['bytes']} bytes "
          f"(limit {arena['limit']}); "
          f"{reg.counter('parallel.arena_cache_hits')} hits, "
          f"{reg.counter('parallel.arena_cache_misses')} misses, "
          f"{reg.counter('parallel.arena_cache_evictions')} evictions, "
          f"{reg.counter('parallel.arena_shared_columns')} shared columns")
    print(f"pool lifecycle: {reg.counter('parallel.pool_reuse')} reuses, "
          f"{reg.counter('parallel.pool_spawn')} spawns, "
          f"{reg.counter('parallel.pool_respawn')} respawns")
    print(f"symbol workspace: "
          f"{'on' if sharing_enabled() else 'OFF (REPRO_SYMBOL_SHARING=0)'}; "
          f"{reg.counter('engine.symbol_workspace_hits')} hits, "
          f"{reg.counter('engine.symbol_workspace_misses')} misses, "
          f"{reg.counter('engine.symbol_workspace_patches')} patches, "
          f"{reg.counter('engine.symbol_workspace_variant_hits')} variant "
          f"hits; {reg.counter('yannakakis.coalesced_semijoins')} "
          f"coalesced semijoins")
    try:
        sym = get_engine("compiled").symbol_cache_stats()
    except Exception:  # pragma: no cover - compiled tier always registers
        sym = None
    if sym is not None:
        print(f"compiled symbol cache: {sym['entries']} entries, "
              f"{sym['probes']} probes, {sym['variants']} variants; "
              f"{reg.counter('compiled.symbol_cache_hits')} hits, "
              f"{reg.counter('compiled.symbol_cache_misses')} misses, "
              f"{reg.counter('compiled.symbol_cache_patches')} patches")
    from repro.obs.watchdog import watchdog as _watchdog

    wd = _watchdog()
    if wd.active:
        print(f"delay watchdog: on — "
              f"{reg.counter('watchdog.checks')} windows checked, "
              f"{reg.counter('watchdog.violations')} violations, "
              f"{reg.counter('watchdog.tail_retained')} tail traces kept")
    else:
        print("delay watchdog: off (set REPRO_WATCHDOG=1 to check live "
              "delay quantiles against the classifier's guarantees)")


def cmd_doctor(args: argparse.Namespace) -> int:
    """Minimise a query, classify its core, and suggest head extensions
    that make it free-connex (the query_doctor example, as a command);
    without a query, check the measurement environment only."""
    from itertools import combinations

    from repro.core.classify import classify
    from repro.logic.containment import core, is_minimal
    from repro.logic.cq import ConjunctiveQuery
    from repro.logic.parser import parse_query

    if args.query is None:
        _doctor_environment()
        _print_plan_cache_stats()
        return 0
    q = parse_query(args.query)
    if not isinstance(q, ConjunctiveQuery) or q.has_comparisons():
        print(classify(q).render())
        _doctor_environment()
        _print_plan_cache_stats()
        return 0
    minimal = core(q)
    if not is_minimal(q):
        print(f"core: {minimal}  (redundant atoms removed)")
    report = classify(minimal)
    print(report.render())
    if report.fact("acyclic") and report.fact("free_connex") is False:
        candidates = [v for v in minimal.variables()
                      if v not in minimal.free_variables()]
        for r in range(1, len(candidates) + 1):
            found = None
            for extra in combinations(candidates, r):
                widened = minimal.with_head(list(minimal.head) + list(extra))
                if widened.is_acyclic() and widened.is_free_connex():
                    found = extra
                    break
            if found:
                names = ", ".join(v.name for v in found)
                print(f"doctor's note: adding [{names}] to the head makes the "
                      f"query free-connex (constant delay, Theorem 4.6)")
                break
    _print_plan_cache_stats()
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate the paper's three figures as text."""
    from repro.figures import figure1_query, figure2_query, figure3_expected
    from repro.hypergraph.components import max_independent_subset, s_components
    from repro.hypergraph.freeconnex import free_connex_join_tree

    q1 = figure1_query()
    tree, _virtual = free_connex_join_tree(q1)
    print("Figure 1 — free-connex join tree of", q1)
    print(tree)
    print()
    q2 = figure2_query()
    h = q2.hypergraph()
    print("Figure 2 — hypergraph edges:")
    for e in h.edges:
        print("  {" + ", ".join(sorted(v.name for v in e)) + "}")
    print()
    print("Figure 3 — S-components:")
    for i, comp in enumerate(s_components(h, q2.free_variables())):
        sub = comp.subhypergraph(h)
        ind = max_independent_subset(sub, sorted(comp.s_vertices, key=str))
        print(f"  component {i}: S = "
              f"{sorted(v.name for v in comp.s_vertices)}, "
              f"max independent S-set {sorted(v.name for v in ind)}")
    print(f"quantified star size = {q2.quantified_star_size()}")
    return 0


def cmd_bench_core(args: argparse.Namespace) -> int:
    """Time the core relational kernel (full reducer, Yannakakis,
    counting) on every registered backend and write BENCH_core.json."""
    import json
    import time as _time

    from repro.counting.acq_count import count_quantifier_free_acyclic
    from repro.data import generators
    from repro.engine import available_engines
    from repro.eval.yannakakis import full_reducer, yannakakis
    from repro.logic.parser import parse_cq

    full_q = parse_cq("Q(x, z, y) :- R(x, z), S(z, y)")
    backends = args.engines or available_engines()
    rows = []
    print(f"{'op':>16} {'n':>9} {'backend':>9} {'seconds':>10}")
    for n in args.sizes:
        db = generators.random_database({"R": 2, "S": 2}, max(4, n // 4), n,
                                        seed=7)
        for backend in backends:
            ops = {
                "full_reducer": lambda: full_reducer(full_q, db,
                                                     engine=backend),
                "yannakakis_full": lambda: yannakakis(full_q, db,
                                                      engine=backend),
                "acyclic_count": lambda: count_quantifier_free_acyclic(
                    full_q, db, engine=backend),
            }
            for op, fn in ops.items():
                fn()  # warm caches (join tree, dictionary encoding)
                best = min(
                    _timed_once(_time, fn) for _ in range(max(1, args.repeats))
                )
                rows.append({"op": op, "n": n, "backend": backend,
                             "seconds": best})
                print(f"{op:>16} {n:>9} {backend:>9} {best:>10.6f}")
    with open(args.output, "w") as fh:
        json.dump(rows, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    if args.json:
        _write_bench_core_json(args.json, rows, args.sizes)
        print(f"wrote {args.json}")
    return 0


def _write_bench_core_json(path: str, rows: List[dict],
                           sizes: List[int]) -> None:
    """Structured bench-core results: raw rows plus a log-log scaling
    slope per (op, backend) series."""
    import json

    from repro.perf.delay import timer_overhead_ns
    from repro.perf.scaling import loglog_slope

    slopes = {}
    for row in rows:
        slopes.setdefault((row["op"], row["backend"]), {})[row["n"]] = \
            row["seconds"]
    slope_rows = [
        {"op": op, "backend": backend,
         "loglog_slope": loglog_slope(sorted(series),
                                      [series[n] for n in sorted(series)])}
        for (op, backend), series in sorted(slopes.items())
    ]
    doc = {
        "benchmark": "bench-core",
        "sizes": list(sizes),
        "timer_overhead_ns": timer_overhead_ns(),
        "rows": rows,
        "slopes": slope_rows,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def _timed_once(time_mod, fn) -> float:
    start = time_mod.perf_counter()
    fn()
    return time_mod.perf_counter() - start


def cmd_bench_delay(args: argparse.Namespace) -> int:
    """Quick delay experiment: free-connex vs Algorithm 2."""
    from repro.data import generators
    from repro.enumeration.acq_linear import LinearDelayACQEnumerator
    from repro.enumeration.free_connex import FreeConnexEnumerator
    from repro.logic.parser import parse_cq
    from repro.perf.delay import measure_enumerator

    _select_engine(args)

    fc = parse_cq("Q(x) :- R(x, z), S(z, y)")
    lin = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    rows = []
    print(f"{'tuples':>8} {'fc median us':>13} {'fc p95 us':>10} "
          f"{'alg2 mean us':>13}")
    for n in args.sizes:
        db = generators.random_database({"R": 2, "S": 2}, max(4, n // 4), n,
                                        seed=7)
        p_fc = measure_enumerator(
            FreeConnexEnumerator(fc, db, block_size=args.block_size),
            max_outputs=500)
        p_lin = measure_enumerator(LinearDelayACQEnumerator(lin, db),
                                   max_outputs=500)
        print(f"{n:>8} {p_fc.median_delay * 1e6:>13.2f} "
              f"{p_fc.percentile(0.95) * 1e6:>10.2f} "
              f"{p_lin.mean_delay * 1e6:>13.2f}")
        rows.append({
            "n": n,
            "free_connex": _delay_profile_row(p_fc),
            "acq_linear": _delay_profile_row(p_lin),
        })
    if args.json:
        _write_bench_delay_json(args.json, rows, args.sizes)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _delay_profile_row(profile) -> dict:
    """JSON-able summary of one DelayProfile (seconds throughout) — the
    canonical observatory statistics block."""
    return profile.summary()


def _write_bench_delay_json(path: str, rows: List[dict],
                            sizes: List[int]) -> None:
    """Structured bench-delay results with log-log scaling slopes: the
    free-connex median delay should stay flat (slope ~0) while its
    preprocessing and Algorithm 2's delay grow with the data."""
    import json

    from repro.perf.delay import timer_overhead_ns
    from repro.perf.scaling import loglog_slope

    ns = [row["n"] for row in rows]
    doc = {
        "benchmark": "bench-delay",
        "sizes": list(sizes),
        "timer_overhead_ns": timer_overhead_ns(),
        "rows": rows,
        "slopes": {
            "free_connex_delay_p50": loglog_slope(
                ns, [r["free_connex"]["delay_p50_seconds"] for r in rows]),
            "free_connex_preprocessing": loglog_slope(
                ns, [r["free_connex"]["preprocessing_seconds"] for r in rows]),
            "acq_linear_delay_mean": loglog_slope(
                ns, [r["acq_linear"]["delay_mean_seconds"] for r in rows]),
        },
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


#: ``repro bench --quick`` sweep: ~1.2 decades of ||D|| for the binary
#: joins and ~1.5 decades for the triangle instances — the smallest
#: spans wide enough that the fitter's anti-flake rule (one decade
#: minimum) cannot return `inconclusive` on a healthy machine, while the
#: whole run stays under ~10 seconds.
QUICK_SIZES = [500, 1000, 2000, 4000, 8000]
QUICK_TRIANGLE_SIZES = [12, 22, 40, 70]
QUICK_SELFJOIN_SIZES = [2000, 5000, 12000]

DEFAULT_HISTORY_DIR = "benchmarks/history"


def _print_regressions(regressions, gate: str) -> int:
    """Print the gate standing per case; return the exit code that the
    ``--gate`` policy assigns to it."""
    flagged = [r for r in regressions if r.flagged]
    if gate != "off":
        for reg in regressions:
            print(reg.describe())
    if not flagged:
        return 0
    if gate == "fail":
        print(f"regression gate: {len(flagged)} case(s) above the rolling "
              f"baseline band — failing", file=sys.stderr)
        return 1
    print(f"regression gate: {len(flagged)} case(s) above the rolling "
          f"baseline band (warn-only; use --gate fail to enforce)",
          file=sys.stderr)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the built-in complexity suites, append every case to the
    history, refresh the snapshot, and print the verdict table."""
    import datetime

    from repro.obs.observatory import Observatory, merge_snapshot, \
        run_bench_suites

    _select_engine(args)
    tracer, previous = _obs_setup(args)
    sizes = args.sizes
    triangle_sizes = args.triangle_sizes
    if args.quick:
        sizes = sizes or QUICK_SIZES
        triangle_sizes = triangle_sizes or QUICK_TRIANGLE_SIZES
    if not sizes or not triangle_sizes:
        print("bench needs --quick or explicit --sizes and "
              "--triangle-sizes", file=sys.stderr)
        return 2
    timestamp = datetime.datetime.now(datetime.timezone.utc).isoformat()
    try:
        records = run_bench_suites(sizes, triangle_sizes, timestamp,
                                   max_outputs=args.max_outputs,
                                   repeats=args.repeats, seed=args.seed)
        if args.parallel_suite:
            from repro.obs.observatory import run_parallel_suite

            records += run_parallel_suite(timestamp,
                                          size=args.parallel_size,
                                          repeats=args.repeats,
                                          seed=args.seed)
        if args.compiled_suite:
            from repro.obs.observatory import run_compiled_suite

            records += run_compiled_suite(timestamp,
                                          sizes=args.compiled_sizes,
                                          repeats=args.repeats,
                                          max_outputs=args.max_outputs,
                                          seed=args.seed)
        if args.dynamic_suite:
            from repro.obs.observatory import run_dynamic_suite

            records += run_dynamic_suite(timestamp,
                                         size=args.dynamic_size,
                                         repeats=args.repeats,
                                         seed=args.seed)
        if args.selfjoin_suite:
            from repro.obs.observatory import run_selfjoin_suite

            selfjoin_sizes = args.selfjoin_sizes
            if args.quick and selfjoin_sizes is None:
                selfjoin_sizes = QUICK_SELFJOIN_SIZES
            records += run_selfjoin_suite(timestamp,
                                          sizes=selfjoin_sizes,
                                          repeats=args.repeats,
                                          seed=args.seed)
    finally:
        _obs_finish(args, tracer, previous)
    observatory = Observatory(args.history_dir)
    snapshots = {"bench": args.snapshot, "parallel": args.parallel_snapshot,
                 "compiled": args.compiled_snapshot,
                 "dynamic": args.dynamic_snapshot,
                 "selfjoin": args.selfjoin_snapshot}
    for record in records:
        observatory.append(record)
        snapshot = snapshots.get(record["suite"])
        if snapshot:
            merge_snapshot(snapshot, record)
    print(f"{'case':>26} {'n range':>16} {'slope [95% CI]':>22} "
          f"{'verdict':>15} {'expected':>15} {'ok':>3}")
    for record in records:
        # fit is None for sub-2-point sweeps (nothing to fit a slope to)
        fit = record["fit"] or {"slope": None, "ci_low": None,
                                "ci_high": None}
        ns = [p["n"] for p in record["points"]]
        if fit["ci_low"] is None:
            ci = f"{fit['slope']:.2f} [n/a]" if fit["slope"] is not None \
                else "n/a"
        else:
            ci = (f"{fit['slope']:.2f} [{fit['ci_low']:.2f}, "
                  f"{fit['ci_high']:.2f}]")
        ok = {True: "yes", False: "NO"}.get(record["verdict_ok"], "-")
        print(f"{record['case']:>26} {min(ns):>7}-{max(ns):>8} {ci:>22} "
              f"{record['verdict']:>15} "
              f"{record['expectation'] or '-':>15} {ok:>3}")
    print(f"recorded {len(records)} cases -> {args.history_dir}"
          + (f" and {args.snapshot}" if args.snapshot else ""))
    rc = _print_regressions(observatory.regressions(), args.gate)
    if args.strict and any(r["verdict_ok"] is False for r in records):
        print("verdict check: measured shape contradicts the classifier "
              "for at least one case — failing (--strict)",
              file=sys.stderr)
        return 1
    return rc


def cmd_report(args: argparse.Namespace) -> int:
    """Render the benchmark history as the HTML/SVG dashboard."""
    from repro.obs.report import write_dashboard

    path, regressions = write_dashboard(
        args.output, args.history_dir,
        baseline_n=args.baseline_n, min_band=args.band)
    print(f"wrote {path}")
    return _print_regressions(regressions, args.gate)


def _demo_workload(stop) -> None:
    """Small synthetic enumeration loop feeding the registry, so a
    standalone ``metrics-serve --demo`` endpoint has live data to show
    (per-plan delay sketches, phase latencies, plan-cache hit rates)."""
    from repro.core.planner import enumerate_answers
    from repro.data import generators
    from repro.logic.parser import parse_query

    query = parse_query("Q(x, z, y) :- R(x, z), S(z, y)")
    db = generators.random_database({"R": 2, "S": 2}, 250, 1000, seed=7)
    import time as _time

    while not stop.is_set():
        for _row in enumerate_answers(query, db):
            pass
        _time.sleep(0.05)


def cmd_metrics_serve(args: argparse.Namespace) -> int:
    """Serve the always-on registry as an OpenMetrics endpoint, with an
    optional periodic file flusher and NDJSON event log."""
    import threading
    import time as _time

    from repro.obs.expose import (MetricsFlusher, configure_event_log,
                                  start_metrics_server)

    if args.events:
        configure_event_log(args.events)
        print(f"event log: {args.events}", file=sys.stderr)
    server = start_metrics_server(args.host, args.port)
    host, port = server.server_address[:2]
    print(f"serving OpenMetrics on http://{host}:{port}/metrics")
    flusher = None
    if args.metrics_out:
        flusher = MetricsFlusher(args.metrics_out,
                                 interval=args.interval).start()
        print(f"flushing exposition + JSON snapshot to {args.metrics_out} "
              f"every {args.interval:g}s", file=sys.stderr)
    stop = threading.Event()
    demo = None
    if args.demo:
        # The demo showcases the full telemetry surface, so install the
        # watchdog: it attributes delay observations to per-plan
        # sketches (delay.plan.<label> summaries on the endpoint).
        from repro.obs.watchdog import install as _install_watchdog

        _install_watchdog()
        demo = threading.Thread(target=_demo_workload, args=(stop,),
                                name="repro-metrics-demo", daemon=True)
        demo.start()
    deadline = None if args.duration is None \
        else _time.monotonic() + args.duration
    try:
        while deadline is None or _time.monotonic() < deadline:
            _time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        if flusher is not None:
            flusher.stop()
        server.shutdown()
        server.server_close()
    return 0


def _top_snapshot(url: Optional[str]) -> dict:
    """One frame of data for ``repro top``: counters, gauges, summary
    sketches and recent events — from a remote ``metrics-serve``
    endpoint when ``url`` is given, else the in-process registry."""
    if url:
        import urllib.request

        from repro.obs.expose import parse_openmetrics

        with urllib.request.urlopen(url, timeout=5) as resp:
            parsed = parse_openmetrics(resp.read().decode())
        for s in parsed["summaries"].values():
            exs = s.get("exemplars") or {}
            ex = exs.get(0.99) or exs.get("0.99")
            s["exemplar"] = (ex or {}).get("labels", {}).get("trace_id")
        return {"counters": parsed["counters"], "gauges": parsed["gauges"],
                "summaries": parsed["summaries"], "events": []}
    from repro import obs
    from repro.obs.expose import event_log

    reg = obs.registry()
    snap = reg.snapshot()
    sketches = reg.sketches()
    summaries = {}
    for name, s in snap["sketches"].items():
        ex = sketches[name].exemplar(0.99) if name in sketches else None
        summaries[name] = {
            "quantiles": {0.5: s["p50"], 0.95: s["p95"],
                          0.99: s["p99"], 0.999: s["p999"]},
            "count": s["count"], "sum": s["sum"],
            "exemplar": ex[1] if ex is not None else None,
        }
    return {"counters": snap["counters"], "gauges": snap["gauges"],
            "summaries": summaries,
            "events": event_log().recent(limit=5)}


def _fmt_ns(ns: float) -> str:
    """Human-readable duration from nanoseconds."""
    if ns < 1_000:
        return f"{ns:.0f}ns"
    if ns < 1_000_000:
        return f"{ns / 1e3:.1f}us"
    if ns < 1_000_000_000:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e9:.2f}s"


def _render_top(data: dict, prev_counters: dict,
                dt: Optional[float], clear: bool) -> None:
    """Print one ``repro top`` frame (delay/phase quantiles, hottest
    counters with rates, recent events)."""
    import datetime as _dt

    if clear:
        print("\x1b[2J\x1b[H", end="")
    stamp = _dt.datetime.now().strftime("%H:%M:%S")
    print(f"repro top — {stamp} — {len(data['counters'])} counters, "
          f"{len(data['summaries'])} sketches")
    ctr = data["counters"]
    print(f"symbol sharing: "
          f"{ctr.get('engine.symbol_workspace_hits', 0)} workspace hits / "
          f"{ctr.get('engine.symbol_workspace_misses', 0)} misses, "
          f"{ctr.get('engine.symbol_workspace_variant_hits', 0)} variant "
          f"hits, {ctr.get('yannakakis.coalesced_semijoins', 0)} coalesced "
          f"semijoins, {ctr.get('parallel.arena_shared_columns', 0)} "
          f"arena-shared columns")
    delays = {n: s for n, s in data["summaries"].items() if "delay" in n}
    phases = {n: s for n, s in data["summaries"].items() if n not in delays}
    if delays:
        print(f"\n{'delay sketch':<44} {'count':>10} {'p50':>9} "
              f"{'p95':>9} {'p99':>9} {'p99.9':>9}  {'p99 exemplar'}")
        for name in sorted(delays):
            s = delays[name]
            q = s["quantiles"]
            print(f"{name[:44]:<44} {int(s.get('count', 0)):>10} "
                  f"{_fmt_ns(q.get(0.5, 0)):>9} {_fmt_ns(q.get(0.95, 0)):>9} "
                  f"{_fmt_ns(q.get(0.99, 0)):>9} "
                  f"{_fmt_ns(q.get(0.999, 0)):>9}  "
                  f"{s.get('exemplar') or '—'}")
    if phases:
        print(f"\n{'phase sketch':<44} {'count':>10} {'p50':>9} "
              f"{'p99':>9} {'total':>9}")
        for name in sorted(phases):
            s = phases[name]
            q = s["quantiles"]
            print(f"{name[:44]:<44} {int(s.get('count', 0)):>10} "
                  f"{_fmt_ns(q.get(0.5, 0)):>9} {_fmt_ns(q.get(0.99, 0)):>9} "
                  f"{_fmt_ns(s.get('sum', 0)):>9}")
    if data["counters"]:
        print(f"\n{'counter':<44} {'total':>12} {'rate/s':>10}")
        hottest = sorted(data["counters"].items(),
                         key=lambda kv: -kv[1])[:12]
        for name, value in hottest:
            # no rate on the first frame, and none on sub-millisecond
            # intervals (dividing by ~0 turns one scrape's worth of
            # counts into a nonsense rate); a registry reset between
            # frames makes the delta negative — clamp to 0, not print
            # a negative rate
            if dt is not None and dt > 1e-3:
                rate = max(0.0, (value - prev_counters.get(name, 0)) / dt)
                rate_s = f"{rate:,.1f}"
            else:
                rate_s = "—"
            print(f"{name[:44]:<44} {int(value):>12,} {rate_s:>10}")
    if data["events"]:
        print("\nrecent events:")
        for ev in data["events"]:
            extra = {k: v for k, v in ev.items()
                     if k not in ("ts", "event", "pid")}
            print(f"  {ev['event']}: {extra}")


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal view of the metrics registry (local or scraped)."""
    import time as _time

    iterations = 1 if args.once else args.iterations
    prev_counters: dict = {}
    prev_t = None
    frame = 0
    while True:
        data = _top_snapshot(args.url)
        now = _time.monotonic()
        dt = None if prev_t is None else now - prev_t
        _render_top(data, prev_counters, dt, clear=not args.once)
        prev_counters = dict(data["counters"])
        prev_t = now
        frame += 1
        if iterations is not None and frame >= iterations:
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree for `python -m repro`."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fine-grained complexity analysis of queries "
                    "(Durand, PODS 2020) — executable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classify", help="complexity report of a query")
    p.add_argument("query", help='e.g. "Q(x, y) :- R(x, z), S(z, y)"')
    p.set_defaults(fn=cmd_classify)

    p = sub.add_parser("run", help="evaluate a query over CSV relations")
    p.add_argument("query")
    p.add_argument("--data", required=True, help="directory of <Rel>.csv files")
    p.add_argument("--count", action="store_true", help="print |Q(D)| only")
    p.add_argument("--limit", type=int, default=None,
                   help="stop after N answers")
    _add_pipeline_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("explain",
                       help="trace one evaluation and print the span tree")
    p.add_argument("query")
    p.add_argument("--data", default=None,
                   help="directory of <Rel>.csv files (default: synthetic "
                        "random data matching the query's schema)")
    p.add_argument("--size", type=int, default=1000,
                   help="tuples per relation for synthetic data")
    p.add_argument("--seed", type=int, default=7,
                   help="random seed for synthetic data")
    p.add_argument("--count", action="store_true",
                   help="trace the counting pipeline instead of enumeration")
    p.add_argument("--limit", type=int, default=None,
                   help="stop enumerating after N answers")
    _add_pipeline_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser("analyze",
                       help="estimated vs actual: run one query "
                            "instrumented and compare per-operator "
                            "cardinalities and timings against the "
                            "classifier's predicted class")
    p.add_argument("query")
    p.add_argument("--data", default=None,
                   help="directory of <Rel>.csv files (default: synthetic "
                        "random data, run at two sizes so the scaling "
                        "checks have two points)")
    p.add_argument("--size", type=int, default=4000,
                   help="tuples per relation for synthetic data (the "
                        "second run uses 2x this)")
    p.add_argument("--seed", type=int, default=7,
                   help="random seed for synthetic data")
    p.add_argument("--scale", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="force/suppress the second 2x-size run (default: "
                        "on for synthetic data, off with --data)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="also write the analysis dict as JSON")
    p.add_argument("--html", default=None, metavar="FILE",
                   help="also render the estimated-vs-actual panel as a "
                        "self-contained HTML file")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero when any operator's actuals "
                        "contradict the predicted class")
    _add_pipeline_flags(p)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("doctor",
                       help="minimise + classify + suggest fixes; also "
                            "checks the measurement environment (timer "
                            "calibration, machine noise)")
    p.add_argument("query", nargs="?", default=None,
                   help="query to doctor (omit to run only the "
                        "environment checks)")
    p.set_defaults(fn=cmd_doctor)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("bench",
                       help="run the complexity suites, record history, "
                            "print the verdict table")
    p.add_argument("--quick", action="store_true",
                   help="use the built-in quick sweep (~10s total)")
    p.add_argument("--sizes", type=int, nargs="+", default=None,
                   help="tuples per relation for the join suites")
    p.add_argument("--triangle-sizes", type=int, nargs="+", default=None,
                   help="per-side vertex counts for the triangle "
                        "lower-bound instances")
    p.add_argument("--max-outputs", type=int, default=600,
                   help="answers measured per enumeration run")
    p.add_argument("--repeats", type=int, default=2,
                   help="repetitions per point (best-of)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--history-dir", default=DEFAULT_HISTORY_DIR,
                   help="JSONL history directory (one file per suite)")
    p.add_argument("--snapshot", default="BENCH_bench.json",
                   help="snapshot file updated with the latest record "
                        "per case ('' disables)")
    p.add_argument("--parallel-suite", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="also run the worker-pool speedup-vs-workers "
                        "suite (snapshot in --parallel-snapshot)")
    p.add_argument("--parallel-size", type=int, default=60_000,
                   help="tuples per relation for the parallel suite's "
                        "fixed instance")
    p.add_argument("--parallel-snapshot", default="BENCH_parallel.json",
                   help="snapshot file for the parallel suite "
                        "('' disables)")
    p.add_argument("--compiled-suite", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="also run the compiled-tier size sweep vs the "
                        "columnar baseline (snapshot in "
                        "--compiled-snapshot)")
    p.add_argument("--compiled-sizes", type=int, nargs="+", default=None,
                   help="tuples per relation for the compiled suite's "
                        "size sweep (default 8k/25k/80k)")
    p.add_argument("--compiled-snapshot", default="BENCH_compiled.json",
                   help="snapshot file for the compiled suite "
                        "('' disables)")
    p.add_argument("--dynamic-suite", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="also run the incremental-maintenance suite: "
                        "update+query cycles, warm delta refresh vs cold "
                        "re-preprocessing (snapshot in --dynamic-snapshot)")
    p.add_argument("--dynamic-size", type=int, default=100_000,
                   help="tuples per relation for the dynamic suite's "
                        "fixed instance")
    p.add_argument("--dynamic-snapshot", default="BENCH_dynamic.json",
                   help="snapshot file for the dynamic suite "
                        "('' disables)")
    p.add_argument("--selfjoin-suite", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="also run the self-join work-sharing suite: "
                        "shared per-symbol workspace vs per-atom rebuild "
                        "(REPRO_SYMBOL_SHARING=0) on same-symbol joins "
                        "(snapshot in --selfjoin-snapshot)")
    p.add_argument("--selfjoin-sizes", type=int, nargs="+", default=None,
                   help="tuples per relation for the self-join suite's "
                        "size sweep (default 10k/100k/300k)")
    p.add_argument("--selfjoin-snapshot", default="BENCH_selfjoin.json",
                   help="snapshot file for the self-join suite "
                        "('' disables)")
    p.add_argument("--gate", choices=("off", "warn", "fail"),
                   default="warn",
                   help="regression gate against the rolling baseline: "
                        "warn (default) prints flags, fail exits nonzero")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero when a measured verdict "
                        "contradicts the classifier's expectation")
    _add_pipeline_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("report",
                       help="render the benchmark history as an "
                            "HTML/SVG dashboard")
    p.add_argument("-o", "--output", default="report.html")
    p.add_argument("--history-dir", default=DEFAULT_HISTORY_DIR)
    p.add_argument("--baseline-n", type=int, default=5,
                   help="rolling-baseline window (median of last N)")
    p.add_argument("--band", type=float, default=0.30,
                   help="minimum regression noise band (fraction)")
    p.add_argument("--gate", choices=("off", "warn", "fail"),
                   default="warn",
                   help="exit policy when a case regressed")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("metrics-serve",
                       help="serve the always-on metrics registry as an "
                            "OpenMetrics endpoint (plus optional file "
                            "flusher and NDJSON event log)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9464,
                   help="TCP port (0 picks an ephemeral one)")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="also flush the exposition text (and FILE.json "
                        "snapshot) to disk on a timer")
    p.add_argument("--interval", type=float, default=10.0,
                   help="flush period in seconds for --metrics-out")
    p.add_argument("--events", default=None, metavar="FILE",
                   help="write discrete events (pool respawns, guarantee "
                        "violations, ...) to this NDJSON file, rotated "
                        "at 4MiB")
    p.add_argument("--duration", type=float, default=None,
                   help="serve for N seconds then exit (default: until "
                        "interrupted)")
    p.add_argument("--demo", action="store_true",
                   help="run a small synthetic enumeration loop so the "
                        "endpoint has live data")
    p.set_defaults(fn=cmd_metrics_serve)

    p = sub.add_parser("top",
                       help="live terminal view of the metrics registry "
                            "(delay/phase quantiles, counter rates, "
                            "recent events)")
    p.add_argument("--url", default=None,
                   help="scrape a metrics-serve endpoint (e.g. "
                        "http://127.0.0.1:9464/metrics) instead of the "
                        "in-process registry")
    p.add_argument("--interval", type=float, default=2.0,
                   help="refresh period in seconds")
    p.add_argument("--iterations", type=int, default=None,
                   help="stop after N frames (default: until interrupted)")
    p.add_argument("--once", action="store_true",
                   help="print one frame without clearing the screen")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("bench-delay", help="quick delay experiment")
    p.add_argument("--sizes", type=int, nargs="+",
                   default=[1000, 4000, 16000])
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write structured results (p50/p95/p99 delays, "
                        "preprocessing, log-log slopes) as JSON")
    _add_pipeline_flags(p)
    p.set_defaults(fn=cmd_bench_delay)

    p = sub.add_parser("bench-core",
                       help="time the relational kernel per backend")
    p.add_argument("--sizes", type=int, nargs="+",
                   default=[10000, 30000, 100000])
    p.add_argument("--engines", nargs="+", default=None,
                   help="backends to time (default: all registered)")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--output", default="BENCH_core.json")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write structured results with per-(op, backend) "
                        "log-log slopes as JSON")
    p.set_defaults(fn=cmd_bench_core)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
