"""T5.3 / T5.4 / T5.5: the prefix classes.

* #Sigma_0 exact counting stays polynomial while the counts explode
  (Theorem 5.3's bottom level);
* the Karp-Luby FPRAS meets Definition 5.4's error bound with runtime
  polynomial in 1/epsilon (Section 5.1);
* the Gray-code enumerator's per-solution work is constant (one set edit)
  while solutions are whole sets (Theorem 5.5).
"""

import time

from _util import format_rows, record, timed

from repro.counting.approx import (
    exact_dnf_count_inclusion_exclusion,
    karp_luby_dnf,
)
from repro.counting.spectrum import count_sigma0
from repro.data import generators
from repro.data.database import Database
from repro.data.relation import Relation
from repro.enumeration.gray import Sigma0SOEnumerator
from repro.logic.fo import And, Not, RelAtom, SOAtom, SecondOrderVariable
from repro.logic.terms import Constant, Variable
from repro.perf.scaling import loglog_slope


def sigma0_formula():
    X = SecondOrderVariable("X", 1)
    x = Variable("x")
    return And(RelAtom("P", [x]), SOAtom(X, [x]),
               Not(SOAtom(X, [Constant(0)]))), X


def test_t53_sigma0_polynomial(benchmark):
    """Theorem 5.3: #Sigma_0^rel counting is polynomial even as the counts
    reach 2^(n^k)."""
    formula, _X = sigma0_formula()
    rows = []
    times, sizes = [], []
    for n in (20, 40, 80, 160):
        rel = Relation("P", 1, [(i,) for i in range(1, n // 2)])
        db = Database([rel], domain=range(n))
        count = count_sigma0(formula, db)
        elapsed = min(timed(lambda: count_sigma0(formula, db)) for _ in range(3))
        rows.append((n, count.bit_length(), elapsed * 1e3))
        times.append(elapsed)
        sizes.append(n)
    slope = loglog_slope(sizes, times)
    text = format_rows(["|Dom|", "count bits", "ms"], rows)
    record("t53_sigma0",
           f"Theorem 5.3 — #Sigma_0 exact counting stays polynomial "
           f"(slope {slope:.2f}) while counts have Theta(n) bits\n" + text)
    assert slope < 2.6, text
    rel = Relation("P", 1, [(i,) for i in range(1, 40)])
    db = Database([rel], domain=range(80))
    benchmark(lambda: count_sigma0(formula, db))


def test_t54_fpras_error_and_cost(benchmark):
    """Definition 5.4: error within epsilon (with margin), runtime growing
    ~1/eps^2."""
    terms = generators.random_kdnf(14, 10, k=3, seed=3)
    exact = exact_dnf_count_inclusion_exclusion(terms, 14)
    rows = []
    times = []
    for eps in (0.4, 0.2, 0.1):
        start = time.perf_counter()
        est = karp_luby_dnf(terms, 14, epsilon=eps, seed=5)
        elapsed = time.perf_counter() - start
        rel_err = abs(est - exact) / exact
        rows.append((eps, exact, round(est), round(rel_err, 4), elapsed * 1e3))
        times.append(elapsed)
        assert rel_err <= 2 * eps, (eps, rel_err)  # margin over the 3/4 bound
    text = format_rows(["epsilon", "exact", "estimate", "rel err", "ms"], rows)
    record("t54_fpras", "Definition 5.4 — Karp-Luby FPRAS on #DNF\n" + text)
    assert times[-1] > times[0], text  # smaller eps costs more
    benchmark(lambda: karp_luby_dnf(terms, 14, epsilon=0.3, seed=7))


def test_t55_gray_delta_constant(benchmark):
    """Theorem 5.5: Sigma_0 set answers via Gray code — at most one tape
    edit between consecutive solutions, independent of the universe."""
    formula, X = sigma0_formula()
    rows = []
    for n in (8, 10, 12):
        rel = Relation("P", 1, [(1,), (2,)])
        db = Database([rel], domain=range(n))
        enum = Sigma0SOEnumerator(formula, db,
                                  universe=[(i,) for i in range(n)])
        edits = 0
        max_edits = 0
        emits = 0
        start = time.perf_counter()
        for delta in enum.deltas():
            if delta.op == "emit":
                emits += 1
                max_edits = max(max_edits, edits)
                edits = 0
            elif delta.op in ("add", "remove"):
                edits += 1
            if emits >= 5000:
                break
        elapsed = time.perf_counter() - start
        rows.append((n, emits, max_edits, elapsed / max(emits, 1) * 1e6))
        assert max_edits <= 1
    text = format_rows(["universe", "solutions", "max edits/solution",
                        "us/solution"], rows)
    record("t55_gray",
           "Theorem 5.5 — delta-constant delay Gray-code enumeration\n" + text)
    rel = Relation("P", 1, [(1,), (2,)])
    db = Database([rel], domain=range(10))

    def consume():
        enum = Sigma0SOEnumerator(formula, db,
                                  universe=[(i,) for i in range(10)])
        count = 0
        for delta in enum.deltas():
            if delta.op == "emit":
                count += 1
                if count >= 2000:
                    break
        return count

    benchmark(consume)
