"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure-equivalent of the paper
(DESIGN.md's per-experiment index): it sweeps instance sizes, asserts the
predicted growth *shape*, records the measured rows under
``benchmarks/results/`` (the numbers EXPERIMENTS.md quotes), and times a
representative operation with pytest-benchmark.

Structured measurements go through :func:`record_case`, the single
recorder of the complexity observatory: every case becomes one canonical
``repro-bench/1`` record (points, provenance, fitted log-log slope,
verdict), appended to ``benchmarks/history/<suite>.jsonl`` and merged
into the ``BENCH_<suite>.json`` snapshot at the repo root.  Schema-less
payloads are rejected at the door — there is no ad-hoc JSON path left.
"""

from __future__ import annotations

import datetime
import os
import time
from typing import Callable, Dict, List, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HISTORY_DIR = os.path.join(os.path.dirname(__file__), "history")

# one timestamp per benchmark process: every case recorded by the same
# run carries the same provenance stamp, so history rows group by run
_RUN_TIMESTAMP: Optional[str] = None


def record(name: str, text: str) -> str:
    """Write one experiment's measured rows to benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text.rstrip() + "\n")
    return path


def run_timestamp() -> str:
    global _RUN_TIMESTAMP
    if _RUN_TIMESTAMP is None:
        _RUN_TIMESTAMP = datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds")
    return _RUN_TIMESTAMP


def record_case(suite: str, case: str, metric: str,
                points: Sequence[Dict[str, object]],
                expectation: Optional[str] = None,
                history_dir: str = HISTORY_DIR,
                snapshot_dir: str = REPO_ROOT) -> dict:
    """Record one benchmark case under the canonical observatory schema.

    ``points`` are ``{"n": size, "value": measurement, ...extras}`` rows;
    the observatory fits the log-log slope, derives the verdict, stamps
    provenance, appends to ``<history_dir>/<suite>.jsonl`` and refreshes
    ``<snapshot_dir>/BENCH_<suite>.json``.  Raises
    :class:`repro.obs.observatory.SchemaError` on malformed payloads.
    """
    from repro.obs.observatory import Observatory, collect_provenance, \
        make_record, merge_snapshot

    rec = make_record(suite, case, metric, points, expectation=expectation,
                      provenance=collect_provenance(run_timestamp()))
    Observatory(history_dir).append(rec)
    merge_snapshot(os.path.join(snapshot_dir, f"BENCH_{suite}.json"), rec)
    return rec


def timed(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def format_rows(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    widths = [max(len(str(h)), max((len(f"{v:.6g}" if isinstance(v, float) else str(v))
                                    for v in col), default=0))
              for h, col in zip(header, zip(*rows))] if rows else [len(h) for h in header]
    out = ["  ".join(str(h).rjust(w) for h, w in zip(header, widths))]
    for row in rows:
        out.append("  ".join(
            (f"{v:.6g}" if isinstance(v, float) else str(v)).rjust(w)
            for v, w in zip(row, widths)))
    return "\n".join(out)
