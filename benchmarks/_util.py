"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure-equivalent of the paper
(DESIGN.md's per-experiment index): it sweeps instance sizes, asserts the
predicted growth *shape*, records the measured rows under
``benchmarks/results/`` (the numbers EXPERIMENTS.md quotes), and times a
representative operation with pytest-benchmark.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Sequence, Tuple

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record(name: str, text: str) -> str:
    """Write one experiment's measured rows to benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text.rstrip() + "\n")
    return path


def timed(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def format_rows(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    widths = [max(len(str(h)), max((len(f"{v:.6g}" if isinstance(v, float) else str(v))
                                    for v in col), default=0))
              for h, col in zip(header, zip(*rows))] if rows else [len(h) for h in header]
    out = ["  ".join(str(h).rjust(w) for h, w in zip(header, widths))]
    for row in rows:
        out.append("  ".join(
            (f"{v:.6g}" if isinstance(v, float) else str(v)).rjust(w)
            for v, w in zip(row, widths)))
    return "\n".join(out)
