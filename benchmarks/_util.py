"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure-equivalent of the paper
(DESIGN.md's per-experiment index): it sweeps instance sizes, asserts the
predicted growth *shape*, records the measured rows under
``benchmarks/results/`` (the numbers EXPERIMENTS.md quotes), and times a
representative operation with pytest-benchmark.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, List, Sequence, Tuple

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORE_RESULTS = os.path.join(REPO_ROOT, "BENCH_core.json")


def record(name: str, text: str) -> str:
    """Write one experiment's measured rows to benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text.rstrip() + "\n")
    return path


def record_core(op: str, n: int, backend: str, seconds: float,
                path: str = CORE_RESULTS) -> str:
    """Merge one kernel measurement into the consolidated ``BENCH_core.json``
    at the repo root (the file `python -m repro bench-core` also writes).

    Rows are keyed on (op, n, backend); re-recording replaces the old row,
    so repeated benchmark runs keep one current number per configuration.
    """
    rows: List[dict] = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                rows = json.load(fh)
        except ValueError:
            rows = []
    rows = [r for r in rows
            if (r.get("op"), r.get("n"), r.get("backend")) != (op, n, backend)]
    rows.append({"op": op, "n": n, "backend": backend, "seconds": seconds})
    rows.sort(key=lambda r: (r["op"], r["n"], r["backend"]))
    with open(path, "w") as fh:
        json.dump(rows, fh, indent=2)
        fh.write("\n")
    return path


def timed(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def format_rows(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    widths = [max(len(str(h)), max((len(f"{v:.6g}" if isinstance(v, float) else str(v))
                                    for v in col), default=0))
              for h, col in zip(header, zip(*rows))] if rows else [len(h) for h in header]
    out = ["  ".join(str(h).rjust(w) for h, w in zip(header, widths))]
    for row in rows:
        out.append("  ".join(
            (f"{v:.6g}" if isinstance(v, float) else str(v)).rjust(w)
            for v, w in zip(row, widths)))
    return "\n".join(out)
