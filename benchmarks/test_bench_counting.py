"""T4.21 / T4.22-Eq2 / T4.28: the counting ladder.

* quantifier-free acyclic counting scales linearly and agrees with the
  naive count (Theorem 4.21), weighted included;
* the star-size sweep: runtime scales like ||D||^s for s = 1, 2, 3
  (Theorem 4.28);
* Equation 2: perfect matchings through 2^n tractable-counting calls
  match Ryser's formula (the #P-hardness mechanism of Theorem 4.22).
"""

from _util import format_rows, record, record_case, timed

from repro.counting.acq_count import (
    count_acq,
    count_cq_naive,
    count_quantifier_free_acyclic,
)
from repro.counting.matchings import (
    count_perfect_matchings_bruteforce,
    count_perfect_matchings_via_acq,
)
from repro.counting.weighted import WeightFunction
from repro.data import generators
from repro.logic.parser import parse_cq
from repro.perf.scaling import loglog_slope


def make_db(n, seed=11):
    return generators.random_database({"R": 2, "S": 2, "T": 2},
                                      max(4, n // 4), n, seed=seed)


def test_t421_quantifier_free_linear(benchmark):
    """Theorem 4.21: #ACQ^0 in (near-)linear time, exact and weighted."""
    q = parse_cq("Q(x, y, z) :- R(x, y), S(y, z)")
    w = WeightFunction(lambda v: (v % 3) + 1)
    rows = []
    times, sizes = [], []
    # >1 decade of n so the observatory can pass a verdict
    for n in (2000, 4000, 8000, 16000, 32000):
        db = make_db(n)
        count = count_quantifier_free_acyclic(q, db)
        weighted = count_quantifier_free_acyclic(q, db, w)
        elapsed = min(timed(lambda: count_quantifier_free_acyclic(q, db))
                      for _ in range(3))
        rows.append((n, db.size(), count, weighted, elapsed * 1e3))
        times.append(elapsed)
        sizes.append(db.size())
    slope = loglog_slope(sizes, times)
    text = format_rows(["tuples", "||D||", "count", "weighted", "ms"], rows)
    record("t421_qf_counting",
           f"Theorem 4.21 — #ACQ^0 linear counting (slope {slope:.2f})\n" + text)
    record_case("counting", "t421_qf_count/total", "total_seconds",
                [{"n": size, "value": v, "count": r[2]}
                 for size, v, r in zip(sizes, times, rows)],
                expectation="linear")
    assert slope < 1.4, text
    db = make_db(4000)
    assert count_quantifier_free_acyclic(q, db) == count_cq_naive(q, db)
    benchmark(lambda: count_quantifier_free_acyclic(q, db))


def test_t428_star_size_sweep(benchmark):
    """Theorem 4.28: counting cost grows with the quantified star size —
    the ||D||^s shape, on one database per size."""
    sweep = [
        (1, "Q(x) :- R(x, z), S(z, y)"),
        (2, "Q(x, y) :- R(x, z), S(z, y)"),
        (3, "Q(x, y, w) :- R(x, z), S(z, y), T(z, w)"),
    ]
    db = make_db(3000)
    rows = []
    times = []
    for s, text_q in sweep:
        q = parse_cq(text_q)
        assert q.quantified_star_size() == s
        count = count_acq(q, db)
        elapsed = min(timed(lambda: count_acq(q, db)) for _ in range(2))
        rows.append((s, count, elapsed * 1e3))
        times.append(elapsed)
    text = format_rows(["star size", "count", "ms"], rows)
    record("t428_star_sweep",
           "Theorem 4.28 — #ACQ cost grows with star size s "
           "(same ||D||)\n" + text)
    assert times[0] < times[1] < times[2], text
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    benchmark(lambda: count_acq(q, db))


def test_t428_scaling_in_database(benchmark):
    """Theorem 4.28, the other axis: at star size 2 the cost grows
    superlinearly in ||D|| (near ||D||^2 worst-case; the measured slope
    sits between the star-1 linear slope and 2)."""
    q1 = parse_cq("Q(x) :- R(x, z), S(z, y)")
    q2 = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    rows = []
    t1s, t2s, sizes = [], [], []
    for n in (1000, 2000, 4000):
        db = make_db(n)
        t1 = min(timed(lambda: count_acq(q1, db)) for _ in range(2))
        t2 = min(timed(lambda: count_acq(q2, db)) for _ in range(2))
        rows.append((n, db.size(), t1 * 1e3, t2 * 1e3))
        t1s.append(t1)
        t2s.append(t2)
        sizes.append(db.size())
    s1 = loglog_slope(sizes, t1s)
    s2 = loglog_slope(sizes, t2s)
    text = format_rows(["tuples", "||D||", "s=1 ms", "s=2 ms"], rows)
    record("t428_scaling",
           f"Theorem 4.28 — star size 1 slope {s1:.2f} vs star size 2 "
           f"slope {s2:.2f}\n" + text)
    record_case("counting", "t428_star1/total", "total_seconds",
                [{"n": size, "value": v} for size, v in zip(sizes, t1s)])
    record_case("counting", "t428_star2/total", "total_seconds",
                [{"n": size, "value": v} for size, v in zip(sizes, t2s)])
    assert s2 > s1, text
    db = make_db(2000)
    benchmark(lambda: count_acq(q1, db))


def test_t422_matchings_equation2(benchmark):
    """Equation 2 / Theorem 4.22: perfect matchings through the #ACQ^0
    oracle vs Ryser — equal counts, with the oracle route paying 2^n
    tractable calls (the #P mechanism)."""
    rows = []
    for n in (5, 6, 7, 8):
        db, a, b = generators.random_bipartite_graph(n, 0.5, seed=n)
        via = count_perfect_matchings_via_acq(db, a, b)
        brute = count_perfect_matchings_bruteforce(db, a, b)
        assert via == brute
        t_via = timed(lambda: count_perfect_matchings_via_acq(db, a, b))
        rows.append((n, via, t_via * 1e3))
    text = format_rows(["n", "perfect matchings", "via-#ACQ ms"], rows)
    record("t422_matchings",
           "Equation 2 / Theorem 4.22 — permanent via 2^n #ACQ^0 calls\n"
           + text)
    db, a, b = generators.random_bipartite_graph(6, 0.5, seed=0)
    benchmark(lambda: count_perfect_matchings_via_acq(db, a, b))


def test_t428_unbounded_star_size_hardness(benchmark):
    """Theorem 4.28's hardness half: over a query CLASS of unbounded star
    size (Equation 2's psi_k), counting time explodes in k on a fixed
    database — the #W[1] shape (the parameter is the query)."""
    from repro.counting.matchings import star_query
    from repro.data.generators import random_bipartite_graph

    db, a, b = random_bipartite_graph(7, 0.6, seed=2)
    rows = []
    times = []
    for k in (2, 3, 4):
        psi = star_query(a[:k])
        assert psi.quantified_star_size() == k
        n = count_acq(psi, db)
        elapsed = timed(lambda: count_acq(psi, db))
        rows.append((k, n, elapsed * 1e3))
        times.append(elapsed)
    text = format_rows(["k (= star size)", "count", "ms"], rows)
    record("t428_hardness",
           "Theorem 4.28 hardness — unbounded star size: counting cost "
           "explodes in the query parameter k\n" + text)
    assert times[-1] > times[0], text
    psi = star_query(a[:3])
    benchmark(lambda: count_acq(psi, db))
