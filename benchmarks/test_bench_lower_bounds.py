"""T4.8 / T4.9 / T4.15: the conditional lower bounds, run forward.

* enumerating the (non-free-connex) Example 4.7 query on encoded
  instances computes Boolean matrix products — its total time tracks the
  cubic-ish BMM baselines while free-connex work on the same data stays
  linear (the Theorem 4.8 crossover);
* the cyclic triangle query costs superlinear preprocessing where the
  acyclic path query on the same graph is linear (Theorem 4.9's shape);
* the k-clique ACQ< instance: evaluation cost explodes with k while the
  instance size grows only polynomially (Theorem 4.15 / W[1]-hardness).
"""

import time

from _util import format_rows, record, record_case, timed

from repro.data import generators
from repro.enumeration.acq_linear import LinearDelayACQEnumerator
from repro.eval.naive import cq_is_satisfiable_naive, evaluate_cq_naive
from repro.eval.yannakakis import acyclic_answers, yannakakis_boolean
from repro.logic.parser import parse_cq
from repro.perf.scaling import loglog_slope
from repro.reductions.bmm import (
    example_47_database,
    example_47_query,
    multiply_boolean_naive,
    multiply_boolean_numpy,
    product_from_example_47_answers,
)
from repro.reductions.clique_inequality import (
    clique_acq_lt_instance,
    has_k_clique_bruteforce,
)


def test_t48_bmm_reduction_crossover(benchmark):
    """Theorem 4.8: the non-free-connex query's evaluation IS matrix
    multiplication; its per-||D|| cost grows with n while the free-connex
    control query stays linear."""
    q47 = example_47_query()
    control = parse_cq("C(x1, x3) :- S(x1, x1, x3)")  # free-connex control
    rows = []
    hard_per_unit, easy_per_unit, sizes = [], [], []
    for n in (40, 80, 160):
        a = generators.boolean_matrix(n, 0.25, seed=1)
        b = generators.boolean_matrix(n, 0.25, seed=2)
        db = example_47_database(a, b)
        t_hard = min(timed(lambda: acyclic_answers(q47, db)) for _ in range(2))
        t_easy = min(timed(lambda: acyclic_answers(control, db)) for _ in range(2))
        t_numpy = min(timed(lambda: multiply_boolean_numpy(a, b)) for _ in range(2))
        answers = acyclic_answers(q47, db)
        assert product_from_example_47_answers(answers, n) == \
            multiply_boolean_naive(a, b)
        rows.append((n, db.size(), t_hard * 1e3, t_easy * 1e3, t_numpy * 1e3))
        hard_per_unit.append(t_hard / db.size())
        easy_per_unit.append(t_easy / db.size())
        sizes.append(db.size())
    text = format_rows(
        ["n", "||D||", "phi_4.7 ms", "free-connex ms", "numpy BMM ms"], rows)
    record("t48_bmm", "Theorem 4.8 — non-free-connex ACQ computes BMM\n" + text)
    record_case("lower_bounds", "t48_bmm/phi47", "total_seconds",
                [{"n": size, "value": r[2] / 1e3}
                 for size, r in zip(sizes, rows)],
                expectation="superlinear")
    record_case("lower_bounds", "t48_bmm/free_connex_control",
                "total_seconds",
                [{"n": size, "value": r[3] / 1e3}
                 for size, r in zip(sizes, rows)])
    # the hard query's per-unit cost grows; the easy one's does not
    assert loglog_slope(sizes, hard_per_unit) > \
        loglog_slope(sizes, easy_per_unit) + 0.2, text
    a = generators.boolean_matrix(60, 0.25, seed=1)
    b = generators.boolean_matrix(60, 0.25, seed=2)
    db = example_47_database(a, b)
    benchmark(lambda: acyclic_answers(q47, db))


def test_t49_cyclic_vs_acyclic(benchmark):
    """Theorem 4.9: deciding/enumerating the triangle (cyclic) costs
    superlinear where the acyclic path query stays linear."""
    triangle = parse_cq("Q() :- E(x, y), E(y, z), E(z, x)")
    path = parse_cq("Q() :- E(x, y), E(y, z)")
    rows = []
    tri_pu, path_pu, sizes = [], [], []
    for n in (40, 80, 160):
        # triangle-free-ish dense bipartite-like graph: worst case for
        # triangle detection (no early exit)
        db = generators.graph_database(
            [(("a", i), ("b", j)) for i in range(n) for j in range(n)
             if (i + j) % 3], symmetric=True)
        t_tri = min(timed(lambda: cq_is_satisfiable_naive(triangle, db))
                    for _ in range(2))
        t_path = min(timed(lambda: yannakakis_boolean(path, db))
                     for _ in range(2))
        rows.append((n, db.size(), t_tri * 1e3, t_path * 1e3))
        tri_pu.append(t_tri / db.size())
        path_pu.append(t_path / db.size())
        sizes.append(db.size())
    text = format_rows(["n", "||D||", "triangle ms", "acyclic path ms"], rows)
    record("t49_cyclic", "Theorem 4.9 — cyclic query cost vs acyclic\n" + text)
    record_case("lower_bounds", "t49_triangle/naive", "total_seconds",
                [{"n": size, "value": r[2] / 1e3}
                 for size, r in zip(sizes, rows)],
                expectation="superlinear")
    record_case("lower_bounds", "t49_path/yannakakis_boolean",
                "total_seconds",
                [{"n": size, "value": r[3] / 1e3}
                 for size, r in zip(sizes, rows)],
                expectation="linear")
    assert loglog_slope(sizes, tri_pu) > loglog_slope(sizes, path_pu) + 0.15, text
    db = generators.graph_database(
        [(("a", i), ("b", j)) for i in range(60) for j in range(60)
         if (i + j) % 3])
    benchmark(lambda: cq_is_satisfiable_naive(triangle, db))


def test_t415_clique_parameter_explosion(benchmark):
    """Theorem 4.15: the ACQ< encoding decides k-clique; time explodes in
    k (the W[1] parameter) while the database only grows polynomially."""
    import random

    rng = random.Random(5)
    n = 7
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)
             if rng.random() < 0.75]
    rows = []
    times = []
    for k in (2, 3, 4):
        query, db = clique_acq_lt_instance(edges, n, k)
        start = time.perf_counter()
        got = cq_is_satisfiable_naive(query, db)
        elapsed = time.perf_counter() - start
        assert got == has_k_clique_bruteforce(edges, n, k), k
        rows.append((k, len(query.atoms), db.size(), got, elapsed * 1e3))
        times.append(elapsed)
    text = format_rows(["k", "atoms", "||D||", "has clique", "decide ms"], rows)
    record("t415_clique_lt",
           "Theorem 4.15 — k-clique via ACQ<: time explodes in k\n" + text)
    # the sweep axis is the W[1] parameter k, carried per point; ``n`` is
    # the instance size so the slope captures time-vs-||D|| blow-up
    record_case("lower_bounds", "t415_clique/decide", "total_seconds",
                [{"n": r[2], "value": v, "k": r[0]}
                 for r, v in zip(rows, times)])
    assert times[-1] > 3 * times[0], text
    query, db = clique_acq_lt_instance(edges, n, 3)
    benchmark(lambda: cq_is_satisfiable_naive(query, db))
