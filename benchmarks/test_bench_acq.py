"""T4.2 / T4.3 / T4.6 / T4.20: the ACQ evaluation & enumeration ladder.

* Yannakakis total time tracks O(||D|| * output) (Theorem 4.2);
* Algorithm 2's delay grows linearly with ||D|| (Theorem 4.3);
* the free-connex engine's delay stays flat (Theorem 4.6);
* free-connex with disequalities stays flat too (Theorem 4.20).
"""

import time

from _util import format_rows, record, record_case, timed

from repro.data import generators
from repro.enumeration.acq_linear import LinearDelayACQEnumerator
from repro.enumeration.disequality import DisequalityEnumerator
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.eval.yannakakis import yannakakis
from repro.logic.parser import parse_cq
from repro.perf.delay import measure_enumerator
from repro.perf.scaling import loglog_slope

# >1 decade of ||D||: the observatory's anti-flake rule refuses a
# verdict on narrower sweeps (see repro.obs.fitting)
SIZES = [1000, 2000, 4000, 8000, 16000]


def make_db(n, seed=7):
    return generators.random_database({"R": 2, "S": 2}, max(4, n // 4), n,
                                      seed=seed)


def test_t42_yannakakis_output_sensitive(benchmark):
    """Theorem 4.2: time per produced tuple stays bounded as ||D|| grows
    (total time O(||phi|| ||D|| ||out||))."""
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    rows = []
    per_tuple = []
    for n in SIZES:
        db = make_db(n)
        start = time.perf_counter()
        out = yannakakis(q, db)
        elapsed = time.perf_counter() - start
        rows.append((n, db.size(), len(out), elapsed * 1e3,
                     elapsed / max(len(out), 1) * 1e6))
        per_tuple.append(elapsed / max(len(out), 1))
    text = format_rows(["tuples", "||D||", "|out|", "total ms", "us/tuple"], rows)
    record("t42_yannakakis", "Theorem 4.2 — Yannakakis output-sensitive eval\n" + text)
    record_case("acq", "t42_yannakakis/per_tuple", "per_tuple_seconds",
                [{"n": r[1], "value": v, "outputs": r[2]}
                 for r, v in zip(rows, per_tuple)])
    # per-tuple cost must not grow linearly with ||D||
    slope = loglog_slope([r[1] for r in rows], per_tuple)
    assert slope < 0.75, text
    db = make_db(4000)
    benchmark(lambda: yannakakis(q, db))


def test_t43_linear_delay_grows(benchmark):
    """Theorem 4.3: Algorithm 2's tail delay grows with ||D||."""
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    rows = []
    means = []
    for n in SIZES:
        db = make_db(n)
        profile = measure_enumerator(LinearDelayACQEnumerator(q, db),
                                     max_outputs=2000)
        rows.append((n, db.size(), profile.n_outputs,
                     profile.mean_delay * 1e6,
                     profile.max_delay * 1e6))
        # the linear cost is paid at every first-coordinate advance, so the
        # MEAN delay (advances amortised over outputs) is the robust signal
        means.append(profile.mean_delay)
    text = format_rows(["tuples", "||D||", "outputs", "mean us", "max us"], rows)
    record("t43_linear_delay", "Theorem 4.3 — Algorithm 2 linear delay\n" + text)
    record_case("acq", "t43_alg2/delay", "delay_mean_seconds",
                [{"n": r[1], "value": v, "outputs": r[2]}
                 for r, v in zip(rows, means)])
    assert means[-1] > 1.5 * means[0], text  # delay visibly grows over 8x data
    db = make_db(2000)
    benchmark(lambda: list(LinearDelayACQEnumerator(q, db)))


def test_t46_constant_delay_flat(benchmark):
    """Theorem 4.6: free-connex delay is independent of ||D||."""
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    rows = []
    p95s = []
    for n in SIZES:
        db = make_db(n)
        profile = measure_enumerator(FreeConnexEnumerator(q, db),
                                     max_outputs=400)
        rows.append((n, db.size(), profile.n_outputs,
                     profile.preprocessing_seconds * 1e3,
                     profile.median_delay * 1e6,
                     profile.percentile(0.95) * 1e6))
        p95s.append(profile.percentile(0.95))
    text = format_rows(
        ["tuples", "||D||", "outputs", "pre ms", "median us", "p95 us"], rows)
    record("t46_constant_delay", "Theorem 4.6 — free-connex constant delay\n" + text)
    record_case("acq", "t46_free_connex/delay_p95", "delay_p95_seconds",
                [{"n": r[1], "value": v, "outputs": r[2]}
                 for r, v in zip(rows, p95s)],
                expectation="constant-delay")
    slope = loglog_slope([r[1] for r in rows], p95s)
    assert slope < 0.4, text  # flat
    db = make_db(2000)
    benchmark(lambda: list(FreeConnexEnumerator(q, db)))


def test_t420_disequality_constant_delay(benchmark):
    """Theorem 4.20: disequalities do not break the flat delay for
    free-connex queries."""
    q = parse_cq("Q(x, y) :- R(x, z), S(y, w), x != y")
    rows = []
    p95s = []
    for n in SIZES:
        db = make_db(n)
        profile = measure_enumerator(DisequalityEnumerator(q, db),
                                     max_outputs=400)
        rows.append((n, db.size(), profile.n_outputs,
                     profile.median_delay * 1e6,
                     profile.percentile(0.95) * 1e6))
        p95s.append(profile.percentile(0.95))
    text = format_rows(["tuples", "||D||", "outputs", "median us", "p95 us"], rows)
    record("t420_disequality", "Theorem 4.20 — ACQ!= constant delay\n" + text)
    record_case("acq", "t420_disequality/delay_p95", "delay_p95_seconds",
                [{"n": r[1], "value": v, "outputs": r[2]}
                 for r, v in zip(rows, p95s)],
                expectation="constant-delay")
    slope = loglog_slope([r[1] for r in rows], p95s)
    assert slope < 0.4, text
    db = make_db(2000)
    benchmark(lambda: sum(1 for _ in DisequalityEnumerator(q, db)))
