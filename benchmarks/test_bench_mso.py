"""T3.11 / T3.12: MSO on bounded treewidth.

* decision and counting scale linearly in the graph size at fixed width
  (Courcelle's theorem and its counting extension);
* enumeration of set answers runs with delay bounded by the output size;
* the two-cluster example certifies the Omega(n) delta between
  consecutive set answers (why Theorem 3.12's delay is |s|-relative).
"""

import sys

from _util import format_rows, record, record_case, timed

from repro.data import generators
from repro.mso.courcelle import count_solutions, decide, optimise
from repro.mso.enumeration import enumerate_solutions, two_cluster_example
from repro.mso.properties import ColoringProperty, DominatingSetProperty, IndependentSetProperty
from repro.mso.treedecomp import adjacency_from_database, tree_decomposition
from repro.perf.delay import measure_stream
from repro.perf.scaling import loglog_slope

sys.setrecursionlimit(40000)  # nice decompositions of long paths are deep

# >1 decade of n so the observatory can pass a verdict
SIZES = [100, 200, 400, 800, 1600]


def bounded_tw_graph(n, seed=2):
    """Degree-2 random graph: a union of paths/cycles, treewidth <= 2."""
    return adjacency_from_database(
        generators.random_bounded_degree_graph(n, 2, seed=seed))


def test_t311_linear_decision_and_counting(benchmark):
    """Theorem 3.11 (+ counting ext.): linear-time DP at fixed width."""
    rows = []
    times, sizes = [], []
    for n in SIZES:
        graph = bounded_tw_graph(n)
        c3 = decide(graph, ColoringProperty(3))
        n_is = count_solutions(graph, IndependentSetProperty())
        elapsed = min(
            timed(lambda: decide(graph, ColoringProperty(3)))
            for _ in range(2))
        rows.append((n, c3, str(n_is)[:12] + ("..." if n_is > 10**12 else ""),
                     elapsed * 1e3))
        times.append(elapsed)
        sizes.append(n)
    slope = loglog_slope(sizes, times)
    text = format_rows(["vertices", "3-colourable", "#indep sets", "decide ms"],
                       rows)
    record("t311_courcelle",
           f"Theorem 3.11 — linear MSO decision at width <= 2 "
           f"(log-log slope {slope:.2f}).  Counting is exact too, but the\n"
           f"counts themselves have Theta(n) bits, so exact counting cannot\n"
           f"be linear on real hardware (the paper's RAM model charges unit\n"
           f"cost per arithmetic op) — see EXPERIMENTS.md.\n" + text)
    record_case("mso", "t311_courcelle/decide", "total_seconds",
                [{"n": size, "value": v}
                 for size, v in zip(sizes, times)],
                expectation="linear")
    assert slope < 1.6, text
    graph = bounded_tw_graph(400)
    benchmark(lambda: decide(graph, ColoringProperty(3)))


def test_t312_enumeration_linear_in_output(benchmark):
    """Theorem 3.12: per-solution delay scales with the instance (solution
    size), not with the number of solutions."""
    rows = []
    delays, sizes = [], []
    for n in (40, 80, 160):
        graph = bounded_tw_graph(n, seed=4)
        profile = measure_stream(
            lambda: iter(enumerate_solutions(graph, IndependentSetProperty())),
            max_outputs=400)
        rows.append((n, profile.n_outputs, profile.median_delay * 1e6,
                     profile.median_delay * 1e6 / n))
        delays.append(profile.median_delay)
        sizes.append(n)
    slope = loglog_slope(sizes, delays)
    text = format_rows(["vertices", "outputs", "median delay us",
                        "delay/vertex us"], rows)
    record("t312_enumeration",
           f"Theorem 3.12 — MSO enumeration, delay linear in output size "
           f"(delay-vs-n slope {slope:.2f}; ~1 = linear in |s|)\n" + text)
    record_case("mso", "t312_enumeration/delay", "delay_p50_seconds",
                [{"n": size, "value": v, "outputs": r[1]}
                 for size, v, r in zip(sizes, delays, rows)])
    assert 0.3 < slope < 2.0, text  # grows with n, roughly linearly
    graph = bounded_tw_graph(60, seed=4)

    def consume():
        count = 0
        for _ in enumerate_solutions(graph, IndependentSetProperty()):
            count += 1
            if count >= 200:
                break
        return count

    benchmark(consume)


def test_t312_two_cluster_lower_bound(benchmark):
    """Section 3.3.1: the two answers are disjoint n-element sets, so any
    enumerator's delta between them is Omega(n)."""
    rows = []
    for n in (50, 100, 200):
        _db, answers = two_cluster_example(n)
        a, b = answers
        rows.append((n, len(answers), len(a ^ b)))
    text = format_rows(["n", "answers", "delta size"], rows)
    record("t312_two_cluster",
           "Section 3.3.1 — consecutive set answers differ in 2n elements\n"
           + text)
    assert all(r[2] == 2 * r[0] for r in rows)
    benchmark(lambda: two_cluster_example(100))


def test_t311_dominating_set_optimisation(benchmark):
    """The optimisation face of Courcelle: min dominating set in linear
    time at fixed width."""
    rows = []
    for n in (100, 200, 400):
        graph = bounded_tw_graph(n, seed=6)
        ds = optimise(graph, DominatingSetProperty())
        rows.append((n, ds))
    text = format_rows(["vertices", "min dominating set"], rows)
    record("t311_dominating", "Courcelle optimisation — min dominating set\n"
           + text)
    graph = bounded_tw_graph(200, seed=6)
    benchmark(lambda: optimise(graph, DominatingSetProperty()))
