"""Dynamic-maintenance benchmarks: warm delta refresh vs cold rebuild.

The acceptance claim of the incremental layer: on a 100k-tuple acyclic
join, an *update+query cycle* with a 1% delta served by the
delta-propagated plan refresh (``REPRO_INCREMENTAL``) must be >= 10x
faster than cold re-preprocessing — while producing byte-identical
answers.  The sweep also visits 0.1% (small deltas, bigger wins) and
10% — the latter deliberately overflows the default 4096-entry
delta log, so the warm path degrades to a ~1x cold fallback: that is
the documented boundary, reported but never asserted against.

Assertion stance on the 1% point:

* ``dynamic/count_refresh`` (Theorem 4.21 counting cycle) carries the
  hard >= 10x gate — the maintained DP touches only the delta.
* ``dynamic/reduce_refresh`` (full-reducer cycle) re-emits reduced
  *relations*, whose copy-out cost scales with the output, not the
  delta; it is gated at a conservative >= 3x with the measured value
  recorded, the same warn-leaning stance the observatory gate takes.

Measurements go through :func:`repro.obs.observatory.run_dynamic_suite`
(the same code ``repro bench --dynamic-suite`` runs), so history rows in
``benchmarks/history/dynamic.jsonl`` and the ``BENCH_dynamic.json``
snapshot look identical no matter which entry point produced them.
"""

import os

from _util import HISTORY_DIR, REPO_ROOT, format_rows, record, run_timestamp

from repro.core.plancache import (
    clear_plan_cache,
    incremental_scope,
    plan_cache_disabled,
)
from repro.core.planner import count
from repro.data import generators
from repro.eval.yannakakis import full_reducer
from repro.logic.parser import parse_cq
from repro.obs.observatory import (
    Observatory,
    merge_snapshot,
    run_dynamic_suite,
)

SIZE = 100_000
QUERY = "Q(x, z, y) :- R(x, z), S(z, y)"


def test_dynamic_refresh_parity_at_bench_scale():
    """A 1% delta served warm returns byte-identical results to cold."""
    q = parse_cq(QUERY)
    db = generators.random_database({"R": 2, "S": 2}, max(4, SIZE // 4),
                                    SIZE, seed=11)
    import random

    rng = random.Random(11)
    domain = max(4, SIZE // 4)
    with incremental_scope(True):
        clear_plan_cache()
        count(q, db, engine="columnar")                 # prime warm plans
        full_reducer(q, db, engine="columnar")
        for _ in range(SIZE // 100):
            rel = db.relation(rng.choice(["R", "S"]))
            tup = (rng.randrange(domain), rng.randrange(domain))
            rel.add(tup) if rng.random() < 0.5 else rel.discard(tup)
        warm_count = count(q, db, engine="columnar")
        _t, warm_red = full_reducer(q, db, engine="columnar")
        warm_rows = [list(r) for r in warm_red]
    with incremental_scope(False), plan_cache_disabled():
        assert count(q, db, engine="columnar") == warm_count
        _t, cold_red = full_reducer(q, db, engine="columnar")
        assert [list(r) for r in cold_red] == warm_rows


def test_dynamic_refresh_speedup(benchmark):
    """Record the warm-vs-cold cycle curve; gate the 1% point."""
    records = run_dynamic_suite(run_timestamp(), size=SIZE, repeats=2)
    observatory = Observatory(HISTORY_DIR)
    for rec in records:
        observatory.append(rec)
        merge_snapshot(os.path.join(REPO_ROOT, "BENCH_dynamic.json"), rec)

    rows, at_1pct = [], {}
    for rec in records:
        for pt in rec["points"]:
            rows.append([rec["case"], pt["n"], f"{pt['delta_fraction']:.3f}",
                         f"{pt['value']:.4f}", f"{pt['cold_seconds']:.4f}",
                         f"{pt['speedup_x']:.2f}x"])
            if pt["delta_fraction"] == 0.01:
                at_1pct[rec["case"]] = pt["speedup_x"]
    record("dynamic_refresh", format_rows(
        ["case", "delta_ops", "fraction", "warm_s", "cold_s", "speedup"],
        rows))

    assert at_1pct["dynamic/count_refresh"] >= 10.0, (
        f"1% count cycle {at_1pct['dynamic/count_refresh']:.2f}x < 10x")
    assert at_1pct["dynamic/reduce_refresh"] >= 3.0, (
        f"1% reducer cycle {at_1pct['dynamic/reduce_refresh']:.2f}x < 3x")

    # one representative timed op for the pytest-benchmark table: a warm
    # 100-op update+count cycle against the primed plan cache
    q = parse_cq(QUERY)
    db = generators.random_database({"R": 2, "S": 2}, max(4, SIZE // 4),
                                    SIZE, seed=7)
    import random

    rng = random.Random(7)
    domain = max(4, SIZE // 4)

    def warm_cycle():
        for _ in range(100):
            db.relation(rng.choice(["R", "S"])).add(
                (rng.randrange(domain), rng.randrange(domain)))
        return count(q, db, engine="columnar")

    with incremental_scope(True):
        clear_plan_cache()
        count(q, db, engine="columnar")
        benchmark(warm_cycle)
