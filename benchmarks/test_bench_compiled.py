"""Compiled-tier benchmarks: speedup-vs-columnar and exact parity.

Two claims:

* the radix-kernel backend returns *exactly* the serial answers — same
  count, same enumeration order — at bench scale, whichever kernel tier
  (numba or the numpy fallback) is active;
* with numba installed the compiled kernels must actually pay for the
  JIT machinery: best counting speedup >= 2x over the serial columnar
  baseline.  On the numpy fallback tier the kernels are the same
  sort-based probes the columnar engine uses, so there the speedup is
  reported but not asserted — the same warn-only stance CI takes.

The measured curve is recorded through the canonical observatory path
(:func:`repro.obs.observatory.run_compiled_suite` — the same code
``repro bench --compiled-suite`` runs), so history rows in
``benchmarks/history/compiled.jsonl`` and the ``BENCH_compiled.json``
snapshot look identical no matter which entry point produced them.
Because this suite sweeps sizes (unlike the worker-count axis of the
parallel suite), the scaling-law verdicts apply in full: the kernel
swap must preserve the paper's shapes — linear counting totals
(Theorem 4.2) and flat free-connex delay (Theorem 4.6) — while moving
only the constant factors.
"""

import os

from _util import HISTORY_DIR, REPO_ROOT, format_rows, record, run_timestamp

from repro.core.plancache import plan_cache_disabled
from repro.core.planner import count
from repro.data import generators
from repro.engine.radix import HAVE_NUMBA, kernel_tier
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.logic.parser import parse_cq
from repro.obs.observatory import (
    Observatory,
    merge_snapshot,
    run_compiled_suite,
)
from repro.obs.fitting import verdict_matches

SIZES = (8_000, 25_000, 80_000)
COUNT_QUERY = "Q(x, z, y) :- R(x, z), S(z, y)"
FC_QUERY = "Q(x) :- R(x, z), S(z, y)"


def test_compiled_parity_at_bench_scale():
    """Counting and enumeration agree with columnar at bench scale."""
    cq = parse_cq(COUNT_QUERY)
    fc = parse_cq(FC_QUERY)
    size = SIZES[-1]
    db = generators.random_database({"R": 2, "S": 2}, max(4, size // 4),
                                    size, seed=7)
    with plan_cache_disabled():
        assert count(cq, db, engine="compiled") \
            == count(cq, db, engine="columnar")
        assert list(FreeConnexEnumerator(fc, db, engine="compiled")) \
            == list(FreeConnexEnumerator(fc, db, engine="columnar"))


def test_compiled_speedup_and_shapes(benchmark):
    """Record the compiled-vs-columnar sweep; assert >= 2x only where
    the JIT tier can deliver it (numba installed)."""
    tier = kernel_tier()
    records = run_compiled_suite(run_timestamp(), sizes=SIZES, repeats=2)
    observatory = Observatory(HISTORY_DIR)
    for rec in records:
        observatory.append(rec)
        merge_snapshot(os.path.join(REPO_ROOT, "BENCH_compiled.json"), rec)

    rows, best = [], {}
    for rec in records:
        case = rec["case"]
        for pt in rec["points"]:
            speed = pt.get("speedup_x")
            rows.append([case, pt["n"], f"{pt['value']:.6f}",
                         f"{speed:.2f}x" if speed is not None else "-"])
            if speed is not None:
                best[case] = max(best.get(case, 0.0), speed)
    record("compiled_speedup", format_rows(
        ["case", "n", "wall_s", "speedup"], rows))

    # the kernel swap must not break the paper's complexity shapes:
    # a *contradicted* verdict on a reliable fit is a real regression
    for rec in records:
        if rec.get("expectation") and rec.get("fit") \
                and rec["fit"].get("reliable"):
            assert verdict_matches(rec["verdict"],
                                   rec["expectation"]) is not False, (
                rec["case"], rec["verdict"], rec["expectation"])

    if HAVE_NUMBA:
        assert best["compiled/count_wall"] >= 2.0, (
            f"best counting speedup {best['compiled/count_wall']:.2f}x "
            f"< 2x with numba installed")
    else:
        print(f"[warn-only] kernel tier {tier}: best speedups "
              + ", ".join(f"{c}={s:.2f}x" for c, s in sorted(best.items()))
              + " — 2x assertion needs numba")

    # one representative timed op for the pytest-benchmark table
    cq = parse_cq(COUNT_QUERY)
    size = SIZES[0]
    db = generators.random_database({"R": 2, "S": 2}, max(4, size // 4),
                                    size, seed=7)
    benchmark(lambda: count(cq, db, engine="compiled"))
