"""Batched enumeration pipeline + plan cache benchmarks (ISSUE 2).

Three claims, matching the acceptance criteria:

* at ~100k tuples the columnar block-at-a-time pipeline enumerates the
  Theorem 4.6 workload with >= 3x the throughput of the tuple-at-a-time
  constant-delay enumerator;
* a warm plan cache makes repeat preprocessing >= 5x cheaper than the
  cold run (Carmeli-Segoufin's repeated-query motivation);
* batching keeps the free-connex delay *flat* in ||D|| — amortisation
  changes the constant, not the growth shape.

Every measured case is recorded under the canonical observatory schema
via :func:`_util.record_case` (suite ``enum``): appended to
``benchmarks/history/enum.jsonl`` and merged into ``BENCH_enum.json``
at the repo root.
"""

import time

from _util import format_rows, record, record_case

from repro.core.plancache import clear_plan_cache, plan_cache_disabled
from repro.data import generators
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.logic.parser import parse_cq
from repro.perf.delay import measure_enumerator
from repro.perf.scaling import loglog_slope

# Theorem 4.6 workloads: quantifier-free (enumeration-heavy) and
# projected (the paper's Q(x) example) free-connex queries
FULL_QUERY = "Q(x, z, y) :- R(x, z), S(z, y)"
PROJ_QUERY = "Q(x) :- R(x, z), S(z, y)"
N_BIG = 100_000
# >1 decade of n so the observatory can pass a shape verdict
SHAPE_SIZES = [8_000, 25_000, 50_000, 100_000]


def make_db(n, seed=7):
    return generators.random_database({"R": 2, "S": 2}, max(4, n // 4), n,
                                      seed=seed)


def _measure_mode(q, db, engine, block_size, max_outputs):
    """(DelayProfile, wall-clock answers/second) for one configuration.

    The wall-based throughput (outputs / enumeration wall time) is the
    recorded number: inside a block the per-answer gap can round to zero,
    which would make the profile's delay-sum throughput infinite.
    """
    clear_plan_cache()
    enum = FreeConnexEnumerator(q, db, engine=engine, block_size=block_size)
    profile = measure_enumerator(enum, max_outputs=max_outputs)
    enum2 = FreeConnexEnumerator(q, db, engine=engine, block_size=block_size)
    with plan_cache_disabled():
        enum2.preprocess()
    start = time.perf_counter()
    n_out = 0
    for _ in enum2._enumerate():
        n_out += 1
        if n_out >= max_outputs:
            break
    wall = time.perf_counter() - start
    return profile, n_out / max(wall, 1e-9)


def test_batched_throughput_speedup(benchmark):
    """>= 3x enumeration throughput, columnar-batched vs tuple, at 100k
    tuples on the Theorem 4.6 workload (the ISSUE acceptance threshold)."""
    q = parse_cq(FULL_QUERY)
    db = make_db(N_BIG)
    max_outputs = 200_000
    rows = []
    throughput = {}
    for mode, engine, block in (("tuple", "tuple", 0),
                                ("columnar-batched", "columnar", None)):
        profile, per_s = _measure_mode(q, db, engine, block, max_outputs)
        throughput[mode] = per_s
        record_case("enum", f"throughput/{mode}", "throughput_per_s",
                    [{"n": N_BIG, "value": per_s, **profile.summary()}])
        rows.append((mode, profile.n_outputs,
                     profile.median_delay * 1e6,
                     profile.mean_delay * 1e6, per_s / 1e6))
    text = format_rows(
        ["mode", "outputs", "median us", "mean us", "M answers/s"], rows)
    record("enum_pipeline_throughput",
           "Batched columnar vs tuple enumeration (Theorem 4.6 workload)\n"
           + text)
    ratio = throughput["columnar-batched"] / max(throughput["tuple"], 1e-9)
    record_case("enum", "throughput/speedup", "ratio",
                [{"n": N_BIG, "value": ratio}])
    assert ratio >= 3.0, text
    benchmark(lambda: sum(1 for _ in FreeConnexEnumerator(
        q, db, engine="columnar")))


def test_plan_cache_cold_vs_warm(benchmark):
    """>= 5x preprocessing speedup from a warm plan cache, both engines."""
    q = parse_cq(FULL_QUERY)
    db = make_db(N_BIG)
    rows = []
    ratios = {}
    for engine in ("tuple", "columnar"):
        cold = float("inf")
        for _ in range(2):
            clear_plan_cache()
            cold = min(cold, measure_enumerator(
                FreeConnexEnumerator(q, db, engine=engine),
                max_outputs=1).preprocessing_seconds)
        # the last cold run left the cache warm
        warm = min(measure_enumerator(
            FreeConnexEnumerator(q, db, engine=engine),
            max_outputs=1).preprocessing_seconds for _ in range(3))
        ratios[engine] = cold / max(warm, 1e-9)
        record_case("enum", f"plan_cache/{engine}-cold",
                    "preprocessing_seconds", [{"n": N_BIG, "value": cold}])
        record_case("enum", f"plan_cache/{engine}-warm",
                    "preprocessing_seconds",
                    [{"n": N_BIG, "value": warm,
                      "speedup": ratios[engine]}])
        rows.append((engine, cold * 1e3, warm * 1e3, ratios[engine]))
    text = format_rows(["engine", "cold ms", "warm ms", "speedup"], rows)
    record("enum_pipeline_plan_cache",
           "Plan cache: cold vs warm preprocessing at 100k tuples\n" + text)
    assert ratios["tuple"] >= 5.0, text
    assert ratios["columnar"] >= 5.0, text
    clear_plan_cache()
    benchmark(lambda: FreeConnexEnumerator(
        q, db, engine="columnar").preprocess())


def test_batched_delay_stays_flat(benchmark):
    """Batching must not change the Theorem 4.6 growth shape: the
    amortised per-answer delay of the columnar pipeline stays flat as
    ||D|| grows (slope ~0, same bar as the tuple path in
    benchmarks/test_bench_acq.py)."""
    q = parse_cq(PROJ_QUERY)
    rows = []
    means = []
    points = []
    for n in SHAPE_SIZES:
        db = make_db(n)
        clear_plan_cache()
        profile = measure_enumerator(
            FreeConnexEnumerator(q, db, engine="columnar"),
            max_outputs=3000)
        rows.append((n, db.size(), profile.n_outputs,
                     profile.median_delay * 1e6,
                     profile.mean_delay * 1e6))
        means.append(profile.mean_delay)
        points.append({"n": n, "value": profile.mean_delay,
                       **profile.summary()})
    text = format_rows(
        ["tuples", "||D||", "outputs", "median us", "mean us"], rows)
    record("enum_pipeline_flat_delay",
           "Batched free-connex delay vs ||D|| (expect flat)\n" + text)
    # the stored record re-fits the slope from the points; no ad-hoc row
    record_case("enum", "flat_delay/columnar-batched",
                "delay_mean_seconds", points,
                expectation="constant-delay")
    slope = loglog_slope([float(n) for n in SHAPE_SIZES], means)
    assert slope < 0.4, text
    db = make_db(SHAPE_SIZES[0])
    benchmark(lambda: sum(1 for _ in FreeConnexEnumerator(
        q, db, engine="columnar")))
