"""X1 / X2: the beyond-the-paper extensions, measured.

* X1 — dynamic free-connex views (the conclusion's "evaluation under
  updates" direction): per-update maintenance cost stays flat as the
  view grows, and is orders of magnitude below recomputation;
* X2 — random access: answer(j) stays microsecond-scale while the
  answer count grows, far below a fresh enumeration to position j.
"""

import random
import time

from _util import format_rows, record, timed

from repro.data import generators
from repro.dynamic import DynamicFreeConnexView
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.enumeration.random_access import RandomAccessEnumerator
from repro.logic.parser import parse_cq
from repro.perf.scaling import loglog_slope


def test_x1_dynamic_updates_flat(benchmark):
    """Per-update cost under a steady stream of inserts/deletes stays
    flat as the maintained state grows, and beats recomputation."""
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    rows = []
    per_update, sizes = [], []
    for n in (2000, 8000, 32000):
        rng = random.Random(3)
        view = DynamicFreeConnexView(q)
        dom = max(8, n // 8)
        # load
        for _ in range(n):
            view.insert("R", (rng.randrange(dom), rng.randrange(dom)))
            view.insert("S", (rng.randrange(dom), rng.randrange(dom)))
        # steady-state churn
        updates = 2000
        start = time.perf_counter()
        for _ in range(updates):
            rel = "R" if rng.random() < 0.5 else "S"
            tup = (rng.randrange(dom), rng.randrange(dom))
            if rng.random() < 0.5:
                view.insert(rel, tup)
            else:
                view.delete(rel, tup)
        elapsed = time.perf_counter() - start
        # recomputation baseline: one static evaluation at this size
        db = generators.random_database({"R": 2, "S": 2}, dom, n, seed=3)
        recompute = timed(lambda: list(FreeConnexEnumerator(q, db)))
        rows.append((n, elapsed / updates * 1e6, recompute * 1e3,
                     view.count_answers()))
        per_update.append(elapsed / updates)
        sizes.append(n)
    text = format_rows(["base tuples", "us/update", "recompute ms", "|Q(D)|"],
                       rows)
    slope = loglog_slope(sizes, per_update)
    record("x1_dynamic",
           f"Extension X1 — dynamic view updates (per-update slope "
           f"{slope:.2f}; recompute grows linearly)\n" + text)
    assert slope < 0.5, text
    # a single update is >100x cheaper than recomputation at the top size
    assert per_update[-1] * 100 < rows[-1][2] / 1e3, text
    view = DynamicFreeConnexView(q)
    rng = random.Random(0)

    def churn():
        for _ in range(200):
            view.insert("R", (rng.randrange(50), rng.randrange(50)))
            view.insert("S", (rng.randrange(50), rng.randrange(50)))

    benchmark(churn)


def test_x2_random_access_logarithmic(benchmark):
    """answer(j) cost stays flat while the database (and answer set)
    grows — random access without materialisation."""
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    rows = []
    costs, sizes = [], []
    for n in (2000, 8000, 32000):
        db = generators.random_database({"R": 2, "S": 2}, max(8, n // 8), n,
                                        seed=5)
        ra = RandomAccessEnumerator(q, db)
        count = ra.count()
        start = time.perf_counter()
        probes = 2000
        for i in range(probes):
            ra.answer((i * 2654435761) % count)
        per_access = (time.perf_counter() - start) / probes
        rows.append((n, count, per_access * 1e6))
        costs.append(per_access)
        sizes.append(n)
    text = format_rows(["tuples", "|Q(D)|", "us/answer(j)"], rows)
    slope = loglog_slope(sizes, costs)
    record("x2_random_access",
           f"Extension X2 — random access answer(j) (slope {slope:.2f})\n"
           + text)
    assert slope < 0.5, text
    db = generators.random_database({"R": 2, "S": 2}, 500, 8000, seed=5)
    ra = RandomAccessEnumerator(q, db)
    n_answers = ra.count()
    benchmark(lambda: [ra.answer(j % n_answers) for j in range(100)])
