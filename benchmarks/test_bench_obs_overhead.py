"""Observability overhead guards (ISSUE 3 disabled tracer, ISSUE 8
always-on registry, ISSUE 9 head-sampled tracing).

The instrumentation in the pipeline is compiled in permanently; with the
null tracer installed each site costs one attribute check (plus a no-op
context manager on span sites).  The acceptance bars: tracing off stays
under 2% of the 100k-tuple enumeration benchmark's wall time, the
always-on registry (which the tracer-off path feeds) under 2%, and
head-sampled tracing (``REPRO_TRACE_SAMPLE`` at 10%, so one request in
ten pays the live-span price) under 5% amortised.

The untraced baseline cannot be re-measured at runtime (the calls are in
the code), so the guards are computed from measurables:

* ``wall`` — enumeration wall time with the tracer disabled;
* ``events`` — how many instrumentation events the same run fires,
  counted by an enabled tracer on an identical workload;
* ``null_cost`` — the measured per-call cost of a disabled
  ``obs.span``/``obs.count``, microbenchmarked directly.

``events * null_cost`` bounds the disabled-path spend inside ``wall``;
the guard asserts it is below 5%.  The registry guard mirrors the
model: registry API invocations of the identical workload (counted by
shimming the singleton) times the microbenchmarked per-op registry cost,
bounded at <2% of the registry-suspended wall time — the amortised
block recording (one ``obs.delay``/``obs.count`` per kernel block, not
per answer) is what keeps the call count small.  Results are recorded
as canonical observatory cases (suite ``obs``) via
:func:`_util.record_case`, landing in ``benchmarks/history/obs.jsonl``
and ``BENCH_obs.json``.
"""

import time

from _util import format_rows, record, record_case

from repro import obs
from repro.core.plancache import clear_plan_cache
from repro.data import generators
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.logic.parser import parse_cq
from repro.obs.registry import registry, suspended

FULL_QUERY = "Q(x, z, y) :- R(x, z), S(z, y)"
N_BIG = 100_000
MAX_OVERHEAD = 0.02
MAX_REGISTRY_OVERHEAD = 0.02
#: head-sampling rate modelled by the sampled-tracing guard: one
#: request in ten runs with a live tracer, the rest on the null path
SAMPLE_RATE = 0.1
MAX_SAMPLED_OVERHEAD = 0.05


def make_db(n, seed=7):
    return generators.random_database({"R": 2, "S": 2}, max(4, n // 4), n,
                                      seed=seed)


def _timed_enumeration(q, db):
    """(wall seconds, answers) for one full cold evaluation."""
    clear_plan_cache()
    enum = FreeConnexEnumerator(q, db, engine="columnar")
    start = time.perf_counter()
    n = sum(1 for _ in enum)
    return time.perf_counter() - start, n


def _null_call_cost():
    """Per-call seconds of a disabled instrumentation site (span + count,
    averaged), measured on the null tracer."""
    assert not obs.enabled()
    reps = 200_000
    start = time.perf_counter()
    for _ in range(reps):
        with obs.span("x"):
            pass
    span_cost = (time.perf_counter() - start) / reps
    start = time.perf_counter()
    for _ in range(reps):
        obs.count("x")
    count_cost = (time.perf_counter() - start) / reps
    return max(span_cost, count_cost)


def test_disabled_tracer_overhead_under_2pct(benchmark):
    """events x null-call-cost < 2% of the 100k enumeration wall time."""
    q = parse_cq(FULL_QUERY)
    db = make_db(N_BIG)
    obs.disable()

    # disabled-path wall time (best of 3 cold runs)
    wall, answers = min(_timed_enumeration(q, db) for _ in range(3))

    # the same workload's event count, from an enabled tracer
    clear_plan_cache()
    with obs.capture() as t:
        traced_start = time.perf_counter()
        traced_answers = sum(
            1 for _ in FreeConnexEnumerator(q, db, engine="columnar"))
        traced_wall = time.perf_counter() - traced_start
        events = t.events + len(t.spans)  # counters/gauges + span begins
    assert traced_answers == answers

    null_cost = _null_call_cost()
    overhead = events * null_cost
    fraction = overhead / max(wall, 1e-9)

    rows = [
        ("disabled wall s", f"{wall:.4f}"),
        ("traced wall s", f"{traced_wall:.4f}"),
        ("answers", answers),
        ("instrumentation events", events),
        ("null call cost ns", f"{null_cost * 1e9:.1f}"),
        ("bounded overhead s", f"{overhead:.6f}"),
        ("overhead fraction", f"{fraction:.4%}"),
    ]
    record("obs_overhead",
           "Disabled-tracer overhead bound on the 100k enumeration "
           "workload\n" + format_rows(["quantity", "value"], rows))
    record_case("obs", "overhead/disabled", "overhead_fraction",
                [{"n": N_BIG, "value": fraction, "wall_seconds": wall,
                  "answers": answers, "events": events,
                  "null_call_cost_ns": null_cost * 1e9}])
    record_case("obs", "overhead/enabled", "wall_seconds",
                [{"n": N_BIG, "value": traced_wall,
                  "answers": traced_answers, "spans": len(t.spans)}])
    assert fraction < MAX_OVERHEAD, rows
    benchmark(_null_call_cost)


def _live_call_cost():
    """Per-call seconds of an instrumentation site on an *enabled*
    tracer with a sampled context — span recorded, trace/span ids
    stamped: the price a sampled request actually pays."""
    reps = 50_000
    with obs.capture() as t:
        assert t.context is not None and t.context.sampled
        start = time.perf_counter()
        for _ in range(reps):
            with obs.span("x"):
                pass
        span_cost = (time.perf_counter() - start) / reps
        start = time.perf_counter()
        for _ in range(reps):
            obs.count("x")
        count_cost = (time.perf_counter() - start) / reps
    return max(span_cost, count_cost)


def test_sampled_tracing_overhead_under_5pct(benchmark):
    """Head-sampled tracing at 10%: one request in ten runs with a live
    tracer (full span recording + id stamping), nine on the null path.
    The amortised bound — events x (rate x live cost + (1 - rate) x
    null cost) — stays under 5% of the tracing-off wall time."""
    q = parse_cq(FULL_QUERY)
    db = make_db(N_BIG)
    obs.disable()

    wall, answers = min(_timed_enumeration(q, db) for _ in range(3))

    clear_plan_cache()
    with obs.capture() as t:
        traced_answers = sum(
            1 for _ in FreeConnexEnumerator(q, db, engine="columnar"))
        events = t.events + len(t.spans)
    assert traced_answers == answers

    live_cost = _live_call_cost()
    null_cost = _null_call_cost()
    amortised = events * (SAMPLE_RATE * live_cost
                          + (1 - SAMPLE_RATE) * null_cost)
    fraction = amortised / max(wall, 1e-9)

    rows = [
        ("tracing-off wall s", f"{wall:.4f}"),
        ("answers", answers),
        ("instrumentation events", events),
        ("live call cost ns", f"{live_cost * 1e9:.1f}"),
        ("null call cost ns", f"{null_cost * 1e9:.1f}"),
        ("sample rate", SAMPLE_RATE),
        ("amortised overhead s", f"{amortised:.6f}"),
        ("overhead fraction", f"{fraction:.4%}"),
    ]
    record("obs_sampled_overhead",
           "Head-sampled tracing overhead bound on the 100k enumeration "
           "workload\n" + format_rows(["quantity", "value"], rows))
    record_case("obs", "overhead/sampled", "overhead_fraction",
                [{"n": N_BIG, "value": fraction, "wall_seconds": wall,
                  "answers": answers, "events": events,
                  "sample_rate": SAMPLE_RATE,
                  "live_call_cost_ns": live_cost * 1e9,
                  "null_call_cost_ns": null_cost * 1e9}])
    assert fraction < MAX_SAMPLED_OVERHEAD, rows
    benchmark(_live_call_cost)


def _count_registry_ops(q, db):
    """Registry API invocations of one full cold evaluation, counted by
    shimming the singleton's write methods."""
    reg = registry()
    calls = {"n": 0}
    originals = {}
    for name in ("count", "gauge", "observe", "record_delay"):
        originals[name] = getattr(reg, name)

        def shim(*args, _orig=originals[name], **kw):
            calls["n"] += 1
            return _orig(*args, **kw)

        setattr(reg, name, shim)
    try:
        clear_plan_cache()
        answers = sum(1 for _ in FreeConnexEnumerator(q, db,
                                                      engine="columnar"))
    finally:
        for name in originals:
            delattr(reg, name)  # drop the instance shims
    return calls["n"], answers


def _registry_op_cost():
    """Per-op seconds of the hottest registry writes (count and
    record_delay, averaged over 200k reps, worst of the two)."""
    reg = registry()
    reps = 200_000
    start = time.perf_counter()
    for _ in range(reps):
        reg.count("bench.op")
    count_cost = (time.perf_counter() - start) / reps
    start = time.perf_counter()
    for _ in range(reps):
        reg.record_delay(1_000, 1)
    delay_cost = (time.perf_counter() - start) / reps
    reg.reset()
    return max(count_cost, delay_cost)


def test_registry_overhead_under_2pct(benchmark):
    """registry ops x per-op cost < 2% of the 100k enumeration wall
    time with the registry suspended."""
    q = parse_cq(FULL_QUERY)
    db = make_db(N_BIG)
    obs.disable()
    registry().reset()

    with suspended():
        wall, answers = min(_timed_enumeration(q, db) for _ in range(3))

    ops, counted_answers = _count_registry_ops(q, db)
    assert counted_answers == answers

    op_cost = _registry_op_cost()
    overhead = ops * op_cost
    fraction = overhead / max(wall, 1e-9)

    rows = [
        ("suspended wall s", f"{wall:.4f}"),
        ("answers", answers),
        ("registry ops", ops),
        ("registry op cost ns", f"{op_cost * 1e9:.1f}"),
        ("bounded overhead s", f"{overhead:.6f}"),
        ("overhead fraction", f"{fraction:.4%}"),
    ]
    record("obs_registry_overhead",
           "Always-on registry overhead bound on the 100k enumeration "
           "workload\n" + format_rows(["quantity", "value"], rows))
    record_case("obs", "overhead/registry", "overhead_fraction",
                [{"n": N_BIG, "value": fraction, "wall_seconds": wall,
                  "answers": answers, "registry_ops": ops,
                  "op_cost_ns": op_cost * 1e9}])
    assert fraction < MAX_REGISTRY_OVERHEAD, rows
    benchmark(_registry_op_cost)
