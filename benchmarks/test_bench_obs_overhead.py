"""Disabled-tracer overhead guard for the observability layer (ISSUE 3).

The instrumentation in the pipeline is compiled in permanently; with the
null tracer installed each site costs one attribute check (plus a no-op
context manager on span sites).  The acceptance bar: that cost stays
under 5% of the 100k-tuple enumeration benchmark's wall time.

The untraced baseline cannot be re-measured at runtime (the calls are in
the code), so the guard is computed from measurables:

* ``wall`` — enumeration wall time with the tracer disabled;
* ``events`` — how many instrumentation events the same run fires,
  counted by an enabled tracer on an identical workload;
* ``null_cost`` — the measured per-call cost of a disabled
  ``obs.span``/``obs.count``, microbenchmarked directly.

``events * null_cost`` bounds the disabled-path spend inside ``wall``;
the guard asserts it is below 5%.  Results merge into
``BENCH_obs.json`` at the repo root.
"""

import json
import os
import time

from _util import REPO_ROOT, format_rows, record

from repro import obs
from repro.core.plancache import clear_plan_cache
from repro.data import generators
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.logic.parser import parse_cq

OBS_RESULTS = os.path.join(REPO_ROOT, "BENCH_obs.json")

FULL_QUERY = "Q(x, z, y) :- R(x, z), S(z, y)"
N_BIG = 100_000
MAX_OVERHEAD = 0.05


def make_db(n, seed=7):
    return generators.random_database({"R": 2, "S": 2}, max(4, n // 4), n,
                                      seed=seed)


def record_obs(experiment, mode, n, **fields):
    """Merge one row into BENCH_obs.json (keyed on experiment/mode/n)."""
    rows = []
    if os.path.exists(OBS_RESULTS):
        try:
            with open(OBS_RESULTS) as fh:
                rows = json.load(fh)
        except ValueError:
            rows = []
    rows = [r for r in rows
            if (r.get("experiment"), r.get("mode"), r.get("n"))
            != (experiment, mode, n)]
    rows.append({"experiment": experiment, "mode": mode, "n": n, **fields})
    rows.sort(key=lambda r: (r["experiment"], r["n"], r["mode"]))
    with open(OBS_RESULTS, "w") as fh:
        json.dump(rows, fh, indent=2)
        fh.write("\n")
    return OBS_RESULTS


def _timed_enumeration(q, db):
    """(wall seconds, answers) for one full cold evaluation."""
    clear_plan_cache()
    enum = FreeConnexEnumerator(q, db, engine="columnar")
    start = time.perf_counter()
    n = sum(1 for _ in enum)
    return time.perf_counter() - start, n


def _null_call_cost():
    """Per-call seconds of a disabled instrumentation site (span + count,
    averaged), measured on the null tracer."""
    assert not obs.enabled()
    reps = 200_000
    start = time.perf_counter()
    for _ in range(reps):
        with obs.span("x"):
            pass
    span_cost = (time.perf_counter() - start) / reps
    start = time.perf_counter()
    for _ in range(reps):
        obs.count("x")
    count_cost = (time.perf_counter() - start) / reps
    return max(span_cost, count_cost)


def test_disabled_tracer_overhead_under_5pct(benchmark):
    """events x null-call-cost < 5% of the 100k enumeration wall time."""
    q = parse_cq(FULL_QUERY)
    db = make_db(N_BIG)
    obs.disable()

    # disabled-path wall time (best of 3 cold runs)
    wall, answers = min(_timed_enumeration(q, db) for _ in range(3))

    # the same workload's event count, from an enabled tracer
    clear_plan_cache()
    with obs.capture() as t:
        traced_start = time.perf_counter()
        traced_answers = sum(
            1 for _ in FreeConnexEnumerator(q, db, engine="columnar"))
        traced_wall = time.perf_counter() - traced_start
        events = t.events + len(t.spans)  # counters/gauges + span begins
    assert traced_answers == answers

    null_cost = _null_call_cost()
    overhead = events * null_cost
    fraction = overhead / max(wall, 1e-9)

    rows = [
        ("disabled wall s", f"{wall:.4f}"),
        ("traced wall s", f"{traced_wall:.4f}"),
        ("answers", answers),
        ("instrumentation events", events),
        ("null call cost ns", f"{null_cost * 1e9:.1f}"),
        ("bounded overhead s", f"{overhead:.6f}"),
        ("overhead fraction", f"{fraction:.4%}"),
    ]
    record("obs_overhead",
           "Disabled-tracer overhead bound on the 100k enumeration "
           "workload\n" + format_rows(["quantity", "value"], rows))
    record_obs("overhead", "disabled", N_BIG,
               wall_seconds=wall, answers=answers, events=events,
               null_call_cost_ns=null_cost * 1e9,
               overhead_fraction=fraction)
    record_obs("overhead", "enabled", N_BIG,
               wall_seconds=traced_wall, answers=traced_answers,
               spans=len(t.spans))
    assert fraction < MAX_OVERHEAD, rows
    benchmark(_null_call_cost)
