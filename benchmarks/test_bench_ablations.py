"""A1-A3: ablations of the design choices DESIGN.md calls out.

* A1 — free-connex enumeration WITH vs WITHOUT the full-reducer pass:
  dangling tuples cause dead-end stalls (delay spikes) when the semijoin
  filtering is skipped;
* A2 — the star-size counting algorithm vs naive materialise-and-count;
* A3 — union-extension UCQ enumeration vs materialise-and-deduplicate.
"""

from _util import format_rows, record, timed

from repro.counting.acq_count import count_acq, count_cq_naive
from repro.data import generators
from repro.data.database import Database
from repro.data.relation import Relation
from repro.enumeration.full_acyclic import FullJoinEnumerator
from repro.enumeration.ucq_union import MaterialisedUnionEnumerator, UCQEnumerator
from repro.eval.join import VarRelation
from repro.logic.parser import parse_cq
from repro.logic.terms import Variable
from repro.logic.ucq import UnionOfConjunctiveQueries
from repro.perf.delay import measure_enumerator


def test_a1_reducer_ablation(benchmark):
    """A1: skip the full reducer on a dangling-heavy instance — the
    unreduced enumerator's worst-case delay spikes while the reduced one
    stays flat.  (With reduce=False and dangling data the nested loops
    stall on dead probes; both must agree on the answers.)"""
    x, y, z, w = (Variable(c) for c in "xyzw")
    m, n = 200, 300
    r1 = VarRelation((x, y))     # many x-matches under the hub y = "b"
    r2 = VarRelation((y, z))     # the chain's middle: mostly dead z values
    r3 = VarRelation((z, w))     # only the live z continues
    for j in range(m):
        r1.add((("a", j), "b"))
    for i in range(n):
        r2.add(("b", ("dead", i)))
    r2.add(("b", "live"))
    for k in range(20):
        r3.add(("live", k))

    def fresh():
        return [r1.copy(), r2.copy(), r3.copy()]

    with_reduce = measure_enumerator(
        FullJoinEnumerator(fresh(), (x, y, z, w), reduce=True))
    without = measure_enumerator(
        FullJoinEnumerator(fresh(), (x, y, z, w), reduce=False))
    assert with_reduce.n_outputs == without.n_outputs == m * 20
    rows = [
        ("with full reducer", with_reduce.n_outputs,
         with_reduce.median_delay * 1e6, with_reduce.max_delay * 1e6),
        ("without (ablated)", without.n_outputs,
         without.median_delay * 1e6, without.max_delay * 1e6),
    ]
    text = format_rows(["variant", "outputs", "median us", "max us"], rows)
    record("a1_reducer", "A1 — full reducer ablation: dangling middle "
           "tuples cause dead-end stalls without the semijoin pass\n" + text)
    assert without.max_delay > 3 * with_reduce.max_delay, text
    benchmark(lambda: sum(1 for _ in FullJoinEnumerator(
        fresh(), (x, y, z, w), reduce=True)))


def test_a2_counting_ablation(benchmark):
    """A2: the Theorem 4.28 counting engine vs naive materialisation on a
    projection-heavy query (few answers, many witnesses)."""
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    rows = []
    for n in (2000, 8000):
        db = generators.random_database({"R": 2, "S": 2}, 40, n, seed=13)
        fast = min(timed(lambda: count_acq(q, db)) for _ in range(2))
        naive = min(timed(lambda: count_cq_naive(q, db)) for _ in range(2))
        assert count_acq(q, db) == count_cq_naive(q, db)
        rows.append((n, fast * 1e3, naive * 1e3, naive / max(fast, 1e-9)))
    text = format_rows(["tuples", "star-size ms", "naive ms", "speedup"], rows)
    record("a2_counting", "A2 — star-size counting vs naive\n" + text)
    assert rows[-1][3] > 1.0, text  # the engine wins on the bigger instance
    db = generators.random_database({"R": 2, "S": 2}, 40, 4000, seed=13)
    benchmark(lambda: count_acq(q, db))


def test_a3_union_ablation(benchmark):
    """A3: time-to-first-k-answers on an output-heavy union — the
    streaming enumerator's preprocessing is input-sized while the
    materialise-and-dedup baseline pays for the whole (quadratic-sized)
    union before emitting anything."""
    def hub_db(m):
        # R1 = m sources to one hub, R2 = hub to m sinks: the union's
        # output is Theta(m^2) while ||D|| is Theta(m)
        r1 = Relation("R1", 2, [((("s", i)), "hub") for i in range(m)])
        r2 = Relation("R2", 2, [("hub", ("t", j)) for j in range(m)])
        return Database([r1, r2])

    ucq = UnionOfConjunctiveQueries([
        parse_cq("Q(x, z, y) :- R1(x, z), R2(z, y)"),   # quantifier-free
        parse_cq("Q(x, z, y) :- R2(z, y), R1(x, z)"),
    ])
    rows = []
    for m in (150, 400):
        db = hub_db(m)
        streaming = measure_enumerator(UCQEnumerator(ucq, db), max_outputs=100)
        materialised = measure_enumerator(
            MaterialisedUnionEnumerator(ucq, db), max_outputs=100)
        t_stream = streaming.preprocessing_seconds + sum(
            streaming.delays_seconds)
        t_mat = materialised.preprocessing_seconds + sum(
            materialised.delays_seconds)
        rows.append((m, m * m, t_stream * 1e3, t_mat * 1e3))
    text = format_rows(["m", "|union|", "streaming first-100 ms",
                        "materialised first-100 ms"], rows)
    record("a3_union", "A3 — streaming union enumeration vs materialisation "
           "(time to first 100 answers)\n" + text)
    assert rows[-1][2] < rows[-1][3], text
    db = hub_db(200)
    benchmark(lambda: sum(1 for _, __ in zip(UCQEnumerator(ucq, db),
                                             range(100))))
