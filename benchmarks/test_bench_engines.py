"""Engine benchmarks: the columnar numpy kernel vs the tuple baseline.

Three claims, matching the engine package's contract:

* on ~100k-tuple acyclic joins the columnar backend runs the full
  reducer, Yannakakis and acyclic counting at least 3x faster than the
  tuple backend (the headline perf target);
* the columnar kernels keep the paper's *linear* complexity shape — the
  full reducer and counting scale ~O(||D||), not worse;
* both backends agree exactly (a cheap smoke version of the hypothesis
  parity suite, suitable for CI).

Every timed series is recorded as one canonical observatory case
(suite ``core``, case ``<op>/<backend>``) via :func:`_util.record_case`:
appended to ``benchmarks/history/core.jsonl`` and merged into
``BENCH_core.json`` at the repo root.
"""

import time

from _util import format_rows, record, record_case

from repro.counting.acq_count import count_quantifier_free_acyclic
from repro.data import generators
from repro.eval.yannakakis import full_reducer, yannakakis
from repro.logic.parser import parse_cq
from repro.perf.scaling import loglog_slope

SPEEDUP_SIZES = [10000, 30000, 100000]
# >1 decade of n so the observatory can pass a shape verdict
SHAPE_SIZES = [12500, 25000, 50000, 100000, 200000]
QUERY = "Q(x, z, y) :- R(x, z), S(z, y)"


def make_db(n, seed=7):
    return generators.random_database({"R": 2, "S": 2}, max(4, n // 4), n,
                                      seed=seed)


def best_of(fn, repeats=3):
    fn()  # warm caches: join tree, dictionary encoding, hash indexes
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def kernel_ops(q, db, backend):
    return {
        "full_reducer": lambda: full_reducer(q, db, engine=backend),
        "yannakakis_full": lambda: yannakakis(q, db, engine=backend),
        "acyclic_count": lambda: count_quantifier_free_acyclic(
            q, db, engine=backend),
    }


def test_columnar_speedup_on_acyclic_joins(benchmark):
    """>= 3x over the tuple backend at N ~ 100k for the Yannakakis and
    counting kernels (the ISSUE's acceptance threshold)."""
    q = parse_cq(QUERY)
    rows = []
    speedups = {}
    series = {}
    for n in SPEEDUP_SIZES:
        db = make_db(n)
        secs = {}
        for backend in ("tuple", "columnar"):
            for op, fn in kernel_ops(q, db, backend).items():
                secs[(op, backend)] = best_of(fn, repeats=2)
                series.setdefault((op, backend), []).append(
                    {"n": n, "value": secs[(op, backend)]})
        for op in ("full_reducer", "yannakakis_full", "acyclic_count"):
            ratio = secs[(op, "tuple")] / max(secs[(op, "columnar")], 1e-9)
            speedups[(op, n)] = ratio
            rows.append((op, n, secs[(op, "tuple")] * 1e3,
                         secs[(op, "columnar")] * 1e3, ratio))
    # no shape expectation here: the speedup sweep is sized for the 3x
    # comparison, where the columnar kernels' fixed overheads flatten
    # the curve — the dedicated SHAPE_SIZES sweep below carries it
    for (op, backend), points in sorted(series.items()):
        record_case("core", f"{op}/{backend}", "total_seconds", points)
    text = format_rows(
        ["op", "tuples", "tuple ms", "columnar ms", "speedup"], rows)
    record("engines_speedup",
           "Columnar vs tuple backend — acyclic join kernels\n" + text)
    n_max = SPEEDUP_SIZES[-1]
    for op in ("yannakakis_full", "acyclic_count"):
        assert speedups[(op, n_max)] >= 3.0, text
    db = make_db(n_max)
    benchmark(lambda: yannakakis(q, db, engine="columnar"))


def test_columnar_kernels_stay_linear(benchmark):
    """The columnar full reducer and counter keep the O(||D||) shape of
    Theorems 4.2/4.21 (log-log slope ~1, not ~2)."""
    q = parse_cq(QUERY)
    rows = []
    reducer_secs, count_secs = [], []
    for n in SHAPE_SIZES:
        db = make_db(n)
        ops = kernel_ops(q, db, "columnar")
        r = best_of(ops["full_reducer"])
        c = best_of(ops["acyclic_count"])
        reducer_secs.append(r)
        count_secs.append(c)
        rows.append((n, r * 1e3, c * 1e3))
    text = format_rows(["tuples", "reducer ms", "count ms"], rows)
    record("engines_linear_shape",
           "Columnar kernel scaling (expect slope ~1)\n" + text)
    record_case("core", "shape/full_reducer-columnar", "total_seconds",
                [{"n": n, "value": v}
                 for n, v in zip(SHAPE_SIZES, reducer_secs)],
                expectation="linear")
    record_case("core", "shape/acyclic_count-columnar", "total_seconds",
                [{"n": n, "value": v}
                 for n, v in zip(SHAPE_SIZES, count_secs)],
                expectation="linear")
    assert loglog_slope(SHAPE_SIZES, reducer_secs) < 1.35, text
    assert loglog_slope(SHAPE_SIZES, count_secs) < 1.35, text
    db = make_db(SHAPE_SIZES[-1])
    benchmark(lambda: full_reducer(q, db, engine="columnar"))


def test_backend_parity_smoke(benchmark):
    """Cheap exact-parity check (the CI companion of the hypothesis suite
    in tests/test_engine_parity.py)."""
    queries = [
        QUERY,
        "Q(x) :- R(x, z), S(z, y)",
        "Q() :- R(x, z), S(z, y)",
    ]
    db = make_db(2000)
    for text in queries:
        q = parse_cq(text)
        assert set(yannakakis(q, db, engine="tuple")) == \
            set(yannakakis(q, db, engine="columnar"))
    qf = parse_cq(QUERY)
    assert count_quantifier_free_acyclic(qf, db, engine="tuple") == \
        count_quantifier_free_acyclic(qf, db, engine="columnar")
    benchmark(lambda: yannakakis(qf, db, engine="columnar"))
