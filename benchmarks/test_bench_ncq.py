"""T4.31: beta-acyclic NCQ decided quasi-linearly by nest-point
Davis-Putnam; cost comparisons against bad orders and against the
non-beta-acyclic fallback."""

from _util import format_rows, record, record_case, timed

from repro.csp.cnf import ncq_to_clauses
from repro.csp.davis_putnam import DPStats, davis_putnam
from repro.csp.ncq_solver import decide_ncq
from repro.data import generators
from repro.hypergraph.acyclicity import nest_point_elimination_order
from repro.logic.atoms import Atom
from repro.logic.ncq import NegativeConjunctiveQuery
from repro.perf.scaling import loglog_slope
from repro.data.database import Database
from repro.data.relation import Relation


def chain_instance(n):
    """A beta-acyclic chain CNF (prefix-free scopes) as an NCQ."""
    cnf = [[-i, i + 1] for i in range(1, n)] + [[1]]
    from repro.csp.cnf import cnf_to_ncq

    return cnf_to_ncq(cnf, n)


def test_t431_quasi_linear_scaling(benchmark):
    """Deciding growing beta-acyclic chains stays near-linear."""
    rows = []
    times, sizes = [], []
    # >1 decade of n so the observatory can pass a verdict
    for n in (200, 400, 800, 1600, 3200):
        ncq, db = chain_instance(n)
        assert ncq.is_beta_acyclic()
        elapsed = min(timed(lambda: decide_ncq(ncq, db)) for _ in range(3))
        rows.append((n, len(ncq.atoms), elapsed * 1e3))
        times.append(elapsed)
        sizes.append(n)
    slope = loglog_slope(sizes, times)
    text = format_rows(["vars", "clauses", "decide ms"], rows)
    record("t431_scaling",
           f"Theorem 4.31 — beta-acyclic NCQ decision (slope {slope:.2f})\n"
           + text)
    record_case("ncq", "t431_beta_acyclic/decide", "total_seconds",
                [{"n": size, "value": v}
                 for size, v in zip(sizes, times)])
    assert slope < 1.8, text  # quasi-linear (n log^2 n-ish), not quadratic+
    ncq, db = chain_instance(800)
    benchmark(lambda: decide_ncq(ncq, db))


def test_t431_order_matters(benchmark):
    """The nest-point order keeps the resolvent count tame where an
    interleaved order produces strictly more resolvents (pigeonhole CNFs
    would blow up; even prefix chains show the gap)."""
    n = 18
    cnf = [[-j] + list(range(1, j)) for j in range(2, n + 1)] + [[n]]
    from repro.csp.cnf import cnf_to_ncq

    ncq, db = cnf_to_ncq(cnf, n)
    assert ncq.is_beta_acyclic()
    clauses, index = ncq_to_clauses(ncq, db)
    order_vars = nest_point_elimination_order(ncq.hypergraph())
    good = [index[v] for v in order_vars if v in index]
    bad = sorted(good, key=lambda v: (v % 2, -v))

    stats_good, stats_bad = DPStats(), DPStats()
    assert davis_putnam(clauses, good, stats_good) == \
        davis_putnam(clauses, bad, stats_bad)
    rows = [("nest-point", stats_good.resolvents, stats_good.peak_clauses),
            ("interleaved", stats_bad.resolvents, stats_bad.peak_clauses)]
    text = format_rows(["order", "resolvents", "peak clauses"], rows)
    record("t431_order", "Theorem 4.31 — elimination order effect\n" + text)
    assert stats_good.resolvents <= stats_bad.resolvents, text
    benchmark(lambda: davis_putnam(clauses, good))


def test_t431_beta_frontier(benchmark):
    """The dichotomy's other side: alpha-acyclified SAT instances (not
    beta-acyclic) fall back to exponential search — measured on instances
    where DP stays flat."""
    from repro.reductions.sat_ncq import cnf_as_acyclic_ncq

    rows = []
    for n in (10, 14, 18):
        cnf = generators.random_kcnf(n, 4 * n, k=3, seed=n)
        ncq, db = cnf_as_acyclic_ncq(cnf, n)
        chain_ncq, chain_db = chain_instance(n)
        t_hard = timed(lambda: decide_ncq(ncq, db))
        t_chain = timed(lambda: decide_ncq(chain_ncq, chain_db))
        rows.append((n, t_hard * 1e3, t_chain * 1e3))
    text = format_rows(["vars", "alpha-only NCQ ms", "beta-acyclic ms"], rows)
    record("t431_frontier",
           "Theorem 4.31 — the beta frontier: alpha-acyclic-but-not-beta "
           "instances cost exponentially, beta-acyclic stay flat\n" + text)
    # growth comparison: the hard column must grow much faster
    assert rows[-1][1] / max(rows[0][1], 1e-6) > \
        rows[-1][2] / max(rows[0][2], 1e-6), text
    cnf = generators.random_kcnf(12, 48, k=3, seed=1)
    ncq, db = cnf_as_acyclic_ncq(cnf, 12)
    benchmark(lambda: decide_ncq(ncq, db))
