"""T4.13: unions of conjunctive queries via union extensions.

Equation 1's union — one non-free-connex disjunct rescued by a
free-connex provider — enumerates with flat per-answer delay, while its
hard disjunct alone (Algorithm 2) pays a growing delay on the same data.
"""

from _util import format_rows, record

from repro.data import generators
from repro.enumeration.acq_linear import LinearDelayACQEnumerator
from repro.enumeration.ucq_union import UCQEnumerator
from repro.logic.parser import parse_cq
from repro.logic.ucq import UnionOfConjunctiveQueries
from repro.perf.delay import measure_enumerator
from repro.perf.scaling import loglog_slope

SIZES = [1000, 2000, 4000, 8000]


def equation1():
    return UnionOfConjunctiveQueries([
        parse_cq("Q(x, y, w) :- R1(x, z), R2(z, y), R3(x, w)"),
        parse_cq("Q(x, z, y) :- R1(x, z), R2(z, y)"),
    ])


def make_db(n, seed=9):
    return generators.random_database({"R1": 2, "R2": 2, "R3": 2},
                                      max(4, n // 4), n, seed=seed)


def test_t413_union_flat_delay(benchmark):
    """Theorem 4.13: the union's delay stays flat across sizes."""
    ucq = equation1()
    rows = []
    medians, sizes = [], []
    for n in SIZES:
        db = make_db(n)
        profile = measure_enumerator(UCQEnumerator(ucq, db), max_outputs=800)
        rows.append((n, db.size(), profile.n_outputs,
                     profile.preprocessing_seconds * 1e3,
                     profile.median_delay * 1e6,
                     profile.percentile(0.95) * 1e6))
        medians.append(max(profile.median_delay, 1e-8))
        sizes.append(db.size())
    text = format_rows(
        ["tuples", "||D||", "outputs", "pre ms", "median us", "p95 us"], rows)
    record("t413_union", "Theorem 4.13 — union-extension enumeration\n" + text)
    assert loglog_slope(sizes, medians) < 0.4, text
    db = make_db(2000)
    benchmark(lambda: sum(1 for _ in UCQEnumerator(ucq, db)))


def test_t413_vs_hard_disjunct_alone(benchmark):
    """The rescue matters: phi1 alone pays Algorithm 2's growing (mean)
    delay on the same databases."""
    phi1 = parse_cq("Q(x, y, w) :- R1(x, z), R2(z, y), R3(x, w)")
    ucq = equation1()
    rows = []
    hard_means, union_means, sizes = [], [], []
    for n in SIZES:
        db = make_db(n)
        hard = measure_enumerator(LinearDelayACQEnumerator(phi1, db),
                                  max_outputs=800)
        easy = measure_enumerator(UCQEnumerator(ucq, db), max_outputs=800)
        rows.append((n, hard.mean_delay * 1e6, easy.mean_delay * 1e6))
        hard_means.append(max(hard.mean_delay, 1e-8))
        union_means.append(max(easy.mean_delay, 1e-8))
        sizes.append(db.size())
    text = format_rows(
        ["tuples", "phi1 alone mean us", "union mean us"], rows)
    record("t413_vs_alone",
           "Theorem 4.13 — hard disjunct alone vs rescued union\n" + text)
    assert loglog_slope(sizes, hard_means) > \
        loglog_slope(sizes, union_means) + 0.3, text
    db = make_db(2000)
    benchmark(lambda: sum(1 for _ in UCQEnumerator(equation1(), db)))
