"""T3.1 / T3.2 / T3.9-3.10: FO on sparse structures.

* bounded degree: model checking and counting scale linearly in ||D||,
  enumeration delay stays flat (Theorems 3.1-3.2);
* low degree (clique + 2^k independents): decision stays pseudo-linear
  and the delay stays flat while the degree grows like log |V|
  (Theorems 3.9-3.10).
"""

from _util import format_rows, record, timed

from repro.data import generators
from repro.enumeration.bounded_degree import (
    BoundedDegreeEnumerator,
    Pattern,
    count_pattern,
    model_check_pattern,
)
from repro.enumeration.low_degree import DegreeProfile, LowDegreeEnumerator
from repro.logic.atoms import Atom, Comparison
from repro.logic.terms import Variable
from repro.perf.delay import measure_stream
from repro.perf.scaling import loglog_slope

x, y, z = Variable("x"), Variable("y"), Variable("z")

PATTERN = Pattern(
    head=(x, z),
    atoms=(Atom("E", [x, y]), Atom("E", [y, z])),
    negated=(Atom("E", [x, z]),),
    disequalities=(Comparison(x, "!=", z),),
)

SIZES = [2000, 4000, 8000, 16000]


def test_t31_linear_model_checking(benchmark):
    """Theorem 3.1: decision time linear in ||D|| on bounded degree."""
    rows = []
    times = []
    sizes = []
    for n in SIZES:
        db = generators.random_bounded_degree_graph(n, 4, seed=3)
        elapsed = min(timed(lambda: model_check_pattern(PATTERN, db))
                      for _ in range(3))
        rows.append((n, db.size(), elapsed * 1e3))
        times.append(elapsed)
        sizes.append(db.size())
    slope = loglog_slope(sizes, times)
    text = format_rows(["vertices", "||D||", "decide ms"], rows)
    record("t31_model_checking",
           f"Theorem 3.1 — linear FO decision on bounded degree "
           f"(log-log slope {slope:.2f})\n" + text)
    assert slope < 1.45, text
    db = generators.random_bounded_degree_graph(4000, 4, seed=3)
    benchmark(lambda: model_check_pattern(PATTERN, db))


def test_t32_linear_counting(benchmark):
    """Theorem 3.2 (counting): one linear pass, exact counts."""
    rows = []
    times, sizes = [], []
    for n in SIZES:
        db = generators.random_bounded_degree_graph(n, 4, seed=3)
        count = count_pattern(PATTERN, db)
        elapsed = min(timed(lambda: count_pattern(PATTERN, db)) for _ in range(3))
        rows.append((n, db.size(), count, elapsed * 1e3))
        times.append(elapsed)
        sizes.append(db.size())
    slope = loglog_slope(sizes, times)
    text = format_rows(["vertices", "||D||", "count", "count ms"], rows)
    record("t32_counting",
           f"Theorem 3.2 — linear FO counting on bounded degree "
           f"(log-log slope {slope:.2f})\n" + text)
    assert slope < 1.45, text
    db = generators.random_bounded_degree_graph(4000, 4, seed=3)
    benchmark(lambda: count_pattern(PATTERN, db))


def test_t32_constant_delay_enumeration(benchmark):
    """Theorem 3.2 (enumeration): flat delay across a 8x size sweep."""
    rows = []
    p95s, sizes = [], []
    for n in SIZES:
        db = generators.random_bounded_degree_graph(n, 4, seed=3)
        profile = measure_stream(
            lambda: iter(BoundedDegreeEnumerator(PATTERN, db)),
            max_outputs=1500)
        rows.append((n, db.size(), profile.n_outputs,
                     profile.median_delay * 1e6,
                     profile.percentile(0.95) * 1e6))
        p95s.append(profile.percentile(0.95))
        sizes.append(db.size())
    slope = loglog_slope(sizes, p95s)
    text = format_rows(["vertices", "||D||", "outputs", "median us", "p95 us"],
                       rows)
    record("t32_enumeration",
           f"Theorem 3.2 — constant-delay FO enumeration "
           f"(p95 log-log slope {slope:.2f})\n" + text)
    assert slope < 0.4, text
    db = generators.random_bounded_degree_graph(4000, 4, seed=3)
    benchmark(lambda: sum(1 for _ in BoundedDegreeEnumerator(PATTERN, db)))


def test_t39_t310_low_degree(benchmark):
    """Theorems 3.9/3.10: on the clique + 2^k family, decision time per
    ||D|| unit stays near-flat and the enumeration delay flat, while the
    degree grows (log n)."""
    two_hop = Pattern(head=(x, z), atoms=(Atom("E", [x, y]), Atom("E", [y, z])))
    rows = []
    per_unit = []
    sizes = []
    for k in (8, 10, 12, 14):
        db = generators.clique_plus_independent(k)
        profile = DegreeProfile.of(db)
        elapsed = min(timed(lambda: model_check_pattern(two_hop, db))
                      for _ in range(3))
        delay = measure_stream(
            lambda: iter(LowDegreeEnumerator(two_hop, db)), max_outputs=500)
        rows.append((k, profile.size, profile.degree,
                     round(profile.epsilon_witness, 3), elapsed * 1e3,
                     delay.median_delay * 1e6))
        per_unit.append(elapsed / db.size())
        sizes.append(db.size())
    text = format_rows(
        ["k", "|V|", "degree", "eps", "decide ms", "median delay us"], rows)
    record("t39_low_degree",
           "Theorems 3.9/3.10 — low-degree pseudo-linear decision, "
           "flat delay\n" + text)
    # pseudo-linear: per-||D||-unit cost must grow sublinearly
    slope = loglog_slope(sizes, per_unit)
    assert slope < 0.5, text
    db = generators.clique_plus_independent(12)
    benchmark(lambda: model_check_pattern(two_hop, db))
