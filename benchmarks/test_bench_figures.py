"""F1-F3: regenerate the paper's three figures (join tree; hypergraph;
S-component decomposition) as printable structures."""

from _util import record

from repro.figures import (
    figure1_added_edge,
    figure1_query,
    figure2_query,
    figure3_expected,
)
from repro.hypergraph.components import max_independent_subset, s_components
from repro.hypergraph.freeconnex import free_connex_join_tree
from repro.hypergraph.jointree import join_tree_of_query


def test_figure1_join_tree(benchmark):
    """Figure 1: the free-connex join tree with its free-only root zone
    and the added {x2, x3} hyperedge."""
    q = figure1_query()
    assert q.is_acyclic() and q.is_free_connex()
    tree, virtual = free_connex_join_tree(q)
    added = figure1_added_edge()
    assert {v.name for v in added} == {"x2", "x3"}

    lines = [
        "Figure 1 — join tree of the extended hypergraph H + {x1,x2,x3},",
        "rooted at the free edge (the paper draws the equivalent tree with",
        "the added sub-edge S'(x2,x3) under the root {x1,x2}):",
        "",
        repr(tree),
        "",
        f"added hyperedge: {{{', '.join(sorted(v.name for v in added))}}}",
        f"query free-connex: {q.is_free_connex()}",
    ]
    record("figure1", "\n".join(lines))
    benchmark(lambda: free_connex_join_tree(figure1_query()))


def test_figure2_hypergraph(benchmark):
    """Figure 2: the hypergraph with S = free = {y1..y7}."""
    q = figure2_query()
    h = q.hypergraph()
    assert q.is_acyclic()
    lines = ["Figure 2 — hypergraph of the Section 4.4 query,",
             f"S = free(phi) = {sorted(v.name for v in q.free_variables())}:",
             ""]
    for i, e in enumerate(h.edges):
        lines.append(f"  e{i}: {{{', '.join(sorted(v.name for v in e))}}}")
    record("figure2", "\n".join(lines))
    benchmark(lambda: figure2_query().hypergraph())


def test_figure3_s_components(benchmark):
    """Figure 3: the decomposition into three S-components; the central
    one holds an independent set of size 3 ({y3, y5, y6})."""
    q = figure2_query()
    h = q.hypergraph()
    expected = figure3_expected()
    comps = s_components(h, q.free_variables())
    assert len(comps) == expected["n_components"]
    assert q.quantified_star_size() == expected["star_size"]

    lines = ["Figure 3 — S-component decomposition:"]
    for i, comp in enumerate(comps):
        sub = comp.subhypergraph(h)
        ind = max_independent_subset(sub, sorted(comp.s_vertices, key=str))
        lines.append(
            f"  component {i}: S-vertices "
            f"{sorted(v.name for v in comp.s_vertices)}; "
            f"max independent S-set {sorted(v.name for v in ind)} "
            f"(size {len(ind)})")
    lines.append(f"quantified star size = {q.quantified_star_size()} "
                 f"(witness {sorted(expected['witness_independent_set'])})")
    record("figure3", "\n".join(lines))
    benchmark(lambda: s_components(figure2_query().hypergraph(),
                                   figure2_query().free_variables()))
