"""Parallel-engine benchmarks: speedup-vs-workers and exact parity.

Two claims:

* the shared-memory worker pool returns *exactly* the serial answers —
  same count, same enumeration order — at every worker count swept;
* with enough cores the sharded kernels actually pay for their fan-out:
  on a >= 4-cpu host the best worker count must reach >= 2x over the
  serial columnar baseline for counting.  On the 1-2 cpu runners CI
  provides, parallelism cannot win (the pool only adds serialisation
  overhead), so there the speedup claim is reported but not asserted —
  the same warn-only stance the observatory gate takes for this suite.

The measured curve is recorded through the canonical observatory path
(:func:`repro.obs.observatory.run_parallel_suite` — the same code
``repro bench`` runs), so history rows in ``benchmarks/history/
parallel.jsonl`` and the ``BENCH_parallel.json`` snapshot look identical
no matter which entry point produced them.
"""

import os

from _util import HISTORY_DIR, REPO_ROOT, format_rows, record, run_timestamp

from repro.core.plancache import plan_cache_disabled
from repro.core.planner import count
from repro.data import generators
from repro.engine.parallel import ParallelEngine, shutdown_pools
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.logic.parser import parse_cq
from repro.obs.observatory import (
    Observatory,
    merge_snapshot,
    run_parallel_suite,
)

SIZE = 60_000
WORKERS = sorted({1, 2, 4, os.cpu_count() or 1})
QUERY = "Q(x, z, y) :- R(x, z), S(z, y)"


def teardown_module(_module):
    shutdown_pools()


def test_parallel_parity_at_bench_scale():
    """Counting and enumeration agree with serial at every fan-out."""
    q = parse_cq(QUERY)
    db = generators.random_database({"R": 2, "S": 2}, max(4, SIZE // 4),
                                    SIZE, seed=7)
    with plan_cache_disabled():
        expect_count = count(q, db, engine="columnar")
        expect_answers = list(FreeConnexEnumerator(q, db, engine="columnar"))
        for w in WORKERS:
            eng = ParallelEngine(workers=w, threshold=0)
            assert count(q, db, engine=eng) == expect_count
            assert list(FreeConnexEnumerator(q, db, engine=eng)) \
                == expect_answers


def test_parallel_speedup_curve(benchmark):
    """Record the speedup-vs-workers curve; assert >= 2x only where the
    hardware can deliver it (cpu_count >= 4)."""
    cpus = os.cpu_count() or 1
    records = run_parallel_suite(run_timestamp(), size=SIZE,
                                 workers_list=WORKERS, repeats=2)
    observatory = Observatory(HISTORY_DIR)
    for rec in records:
        observatory.append(rec)
        merge_snapshot(os.path.join(REPO_ROOT, "BENCH_parallel.json"), rec)

    rows = []
    best = {}
    for rec in records:
        case = rec["case"]
        for pt in rec["points"]:
            rows.append([case, pt["n"], f"{pt['value']:.4f}",
                         f"{pt['speedup_x']:.2f}x"])
            best[case] = max(best.get(case, 0.0), pt["speedup_x"])
    record("parallel_speedup", format_rows(
        ["case", "workers", "wall_s", "speedup"], rows))

    if cpus >= 4:
        assert best["parallel/count_wall"] >= 2.0, (
            f"best counting speedup {best['parallel/count_wall']:.2f}x "
            f"< 2x on a {cpus}-cpu host")
    else:
        print(f"[warn-only] {cpus} cpu(s): best speedups "
              + ", ".join(f"{c}={s:.2f}x" for c, s in sorted(best.items()))
              + " — 2x assertion needs >= 4 cpus")

    # one representative timed op for the pytest-benchmark table
    q = parse_cq(QUERY)
    db = generators.random_database({"R": 2, "S": 2}, max(4, SIZE // 4),
                                    SIZE, seed=7)
    eng = ParallelEngine(workers=min(2, cpus) if cpus > 1 else 1,
                         threshold=0)
    benchmark(lambda: count(q, db, engine=eng))
