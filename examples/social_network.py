"""Social-network analytics: the fine-grained enumeration story on a
realistic workload (Sections 4.1-4.2 of the paper, live).

Three product questions over a synthetic follower graph:

* "followers of followers" for a recommendations panel — free-connex,
  so results stream with database-independent delay (Theorem 4.6);
* "pairs two hops apart" — the matrix-multiplication shape, provably not
  constant-delay-enumerable (Theorem 4.8), served with linear delay
  (Theorem 4.3) instead;
* a UNION of a hard and an easy query whose union extension makes the
  whole union easy again (Theorem 4.13 / Equation 1).

The script measures actual per-answer delays at growing graph sizes so
you can watch the flat-vs-growing separation on your own machine.

Run:  python examples/social_network.py
"""

import random

from repro import Database, Relation, classify, parse_query
from repro.enumeration.acq_linear import LinearDelayACQEnumerator
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.enumeration.ucq_union import UCQEnumerator
from repro.logic.ucq import UnionOfConjunctiveQueries
from repro.logic.parser import parse_cq
from repro.perf.delay import measure_enumerator


def follower_graph(n_users: int, avg_follows: int, seed: int = 0) -> Database:
    rng = random.Random(seed)
    follows = Relation("F", 2)
    interests = Relation("I", 2)
    topics = [f"topic{i}" for i in range(20)]
    for u in range(n_users):
        for _ in range(avg_follows):
            v = rng.randrange(n_users)
            if v != u:
                follows.add((u, v))
        interests.add((u, rng.choice(topics)))
    db = Database([follows, interests])
    db.add_domain_values(range(n_users))
    return db


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    banner("Workload 1: recommendation feed (free-connex, Theorem 4.6)")
    # the middleman stays in the head: free-connex (drop him and you get
    # the Workload-2 hard shape)
    feed = parse_cq(
        "Feed(user, friend, topic) :- F(user, friend), I(friend, topic)")
    print(classify(feed).verdict("enumerate").render())
    print(f"{'users':>8} {'||D||':>9} {'pre (ms)':>10} {'median delay (us)':>19} "
          f"{'p95 (us)':>10}")
    for n in (500, 2000, 8000):
        db = follower_graph(n, 5, seed=1)
        profile = measure_enumerator(FreeConnexEnumerator(feed, db),
                                     max_outputs=2000)
        print(f"{n:>8} {db.size():>9} {profile.preprocessing_seconds*1e3:>10.2f} "
              f"{profile.median_delay*1e6:>19.2f} "
              f"{profile.percentile(0.95)*1e6:>10.2f}")
    print("-> delay columns stay flat while ||D|| grows 16x")

    banner("Workload 2: two-hop pairs (the Mat-Mul shape, Theorems 4.3/4.8)")
    twohop = parse_cq("TwoHop(a, b) :- F(a, mid), F(mid, b)")
    print(classify(twohop).verdict("enumerate").render())
    print(f"{'users':>8} {'p95 delay (us)':>16}   (grows ~linearly in ||D||)")
    for n in (500, 2000, 8000):
        db = follower_graph(n, 5, seed=1)
        profile = measure_enumerator(LinearDelayACQEnumerator(twohop, db),
                                     max_outputs=300)
        print(f"{n:>8} {profile.percentile(0.95)*1e6:>16.2f}")

    banner("Workload 3: union rescue (Theorem 4.13, Equation 1)")
    phi1 = parse_cq("Q(a, b, t) :- F(a, m), F(m, b), I(a, t)")
    phi2 = parse_cq("Q(a, m, b) :- F(a, m), F(m, b)")
    union = UnionOfConjunctiveQueries([phi1, phi2])
    print(f"phi1 free-connex: {phi1.is_free_connex()}   "
          f"phi2 free-connex: {phi2.is_free_connex()}")
    print(classify(union).verdict("enumerate").render())
    db = follower_graph(800, 4, seed=2)
    profile = measure_enumerator(UCQEnumerator(union, db), max_outputs=2000)
    print(f"union answers sampled: {profile.n_outputs}, "
          f"median delay {profile.median_delay*1e6:.2f}us")


if __name__ == "__main__":
    main()
