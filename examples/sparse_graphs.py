"""Sparse data: first-order queries on bounded-degree, low-degree and
bounded-treewidth structures (Section 3 of the paper, live).

* a road-network-like bounded-degree graph: local patterns (paths with
  negations and disequalities) are decided, counted and enumerated in
  linear time / constant delay (Theorems 3.1-3.2), with the measured
  delay flat across a 16x size sweep;
* the clique-plus-2^k-independent family of Section 3.2: *low degree*,
  not closed under substructures, still pseudo-linear (Theorems 3.9-3.10);
* a tree-shaped overlay network: MSO-style optimisation (minimum
  dominating set = service placement), counting and enumeration via the
  Courcelle DP (Theorems 3.11-3.12), plus the two-cluster example showing
  why set answers cannot come with constant delay.

Run:  python examples/sparse_graphs.py
"""

from repro.data import generators
from repro.enumeration.bounded_degree import (
    BoundedDegreeEnumerator,
    Pattern,
    count_pattern,
)
from repro.enumeration.low_degree import DegreeProfile, LowDegreeEnumerator
from repro.logic.atoms import Atom, Comparison
from repro.logic.terms import Variable
from repro.mso.courcelle import count_solutions, optimise
from repro.mso.enumeration import enumerate_solutions, two_cluster_example
from repro.mso.properties import DominatingSetProperty, IndependentSetProperty
from repro.mso.treedecomp import adjacency_from_database, tree_decomposition
from repro.perf.delay import measure_stream


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    x, y, z = Variable("x"), Variable("y"), Variable("z")

    banner("1. Bounded degree: linear time + constant delay (Thms 3.1-3.2)")
    # open triangles: paths x-y-z that do NOT close, with x != z
    pattern = Pattern(
        head=(x, z),
        atoms=(Atom("E", [x, y]), Atom("E", [y, z])),
        negated=(Atom("E", [x, z]),),
        disequalities=(Comparison(x, "!=", z),),
    )
    print(f"{'vertices':>9} {'count':>8} {'median delay (us)':>19} {'p95 (us)':>9}")
    for n in (1000, 4000, 16000):
        db = generators.random_bounded_degree_graph(n, 4, seed=1)
        total = count_pattern(pattern, db)
        profile = measure_stream(
            lambda: iter(BoundedDegreeEnumerator(pattern, db)),
            max_outputs=2000)
        print(f"{n:>9} {total:>8} {profile.median_delay*1e6:>19.2f} "
              f"{profile.percentile(0.95)*1e6:>9.2f}")
    print("-> counting is one linear pass; the delay columns stay flat")

    banner("2. Low degree: clique + 2^k independent (Section 3.2, Thm 3.10)")
    for k in (6, 9, 12):
        db = generators.clique_plus_independent(k)
        profile = DegreeProfile.of(db)
        pat = Pattern(head=(x, z), atoms=(Atom("E", [x, y]), Atom("E", [y, z])))
        answers = sum(1 for _ in LowDegreeEnumerator(pat, db))
        print(f"k={k:<3} |V|={profile.size:<6} degree={profile.degree:<3} "
              f"epsilon-witness={profile.epsilon_witness:.3f}  "
              f"two-hop answers={answers}")
    print("-> degree grows like log |V|: low degree, pseudo-linear engine")

    banner("3. Bounded treewidth: MSO optimisation on an overlay tree")
    db = generators.random_bounded_degree_graph(60, 2, seed=5)
    graph = adjacency_from_database(db)
    td = tree_decomposition(graph)
    print(f"treewidth (heuristic) = {td.width}")
    ds = optimise(graph, DominatingSetProperty())
    n_is = count_solutions(graph, IndependentSetProperty())
    print(f"minimum service-placement (dominating set) size: {ds}")
    print(f"number of independent sets (counting, Courcelle ext.): {n_is}")
    first_three = []
    for s in enumerate_solutions(graph, IndependentSetProperty()):
        first_three.append(s)
        if len(first_three) == 3:
            break
    print(f"first enumerated independent sets: "
          f"{[sorted(s) for s in first_three]}")

    banner("4. Why set answers cannot have constant delay (Section 3.3.1)")
    _db, answers = two_cluster_example(8)
    a, b = answers
    print(f"phi(X) has exactly two answers; they differ in "
          f"{len(a ^ b)} elements -> Omega(n) work between outputs;")
    print("the right guarantee is delay linear in the OUTPUT size (Thm 3.12)")


if __name__ == "__main__":
    main()
