"""Negative queries and SAT (Section 4.5 of the paper, live).

* A product-configuration problem is compiled to CNF and decided three
  ways: brute force, plain Davis-Putnam, and the paper's quasi-linear
  route — Davis-Putnam driven by a *nest-point elimination order* of a
  beta-acyclic constraint hypergraph (Theorem 4.31), with resolvent
  statistics showing why the order matters;
* the alpha-acyclicity trap: conjoining "not Full(all vars)" with an
  empty relation makes ANY instance alpha-acyclic without changing its
  meaning, so alpha-acyclic NCQ evaluation is as hard as SAT — the
  executable reason Section 4.5 retreats to beta-acyclicity.

Run:  python examples/sat_and_csp.py
"""

from repro.csp.cnf import clauses_satisfiable_bruteforce, cnf_to_ncq, ncq_to_clauses
from repro.csp.davis_putnam import DPStats, davis_putnam
from repro.csp.ncq_solver import decide_ncq
from repro.hypergraph.acyclicity import nest_point_elimination_order
from repro.reductions.sat_ncq import cnf_as_acyclic_ncq, is_alpha_but_not_beta


def configuration_cnf(n_options: int):
    """Option j can only be enabled when some earlier option is: clause
    scopes are the prefixes {1..j}, which are nested — every variable's
    clause set is a chain, so the hypergraph is beta-acyclic."""
    clauses = [[-j] + list(range(1, j)) for j in range(2, n_options + 1)]
    clauses.append([n_options])        # the premium option is required
    clauses.append([-1, -2])           # options 1 and 2 are exclusive
    return clauses


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    n = 14
    cnf = configuration_cnf(n)

    banner("1. The configuration problem as a negative conjunctive query")
    ncq, db = cnf_to_ncq(cnf, n)
    print(f"clauses: {len(cnf)}, variables: {n}")
    print(f"beta-acyclic: {ncq.is_beta_acyclic()}")

    order = nest_point_elimination_order(ncq.hypergraph())
    print(f"nest-point elimination order: {[v.name for v in order][:8]} ...")

    banner("2. Davis-Putnam: nest-point order vs a bad order (Thm 4.31)")
    clauses, index = ncq_to_clauses(ncq, db)
    good = [index[v] for v in order if v in index]
    bad = sorted(good, key=lambda v: (v % 3, v))  # an interleaved order

    for label, elimination in (("nest-point order", good), ("bad order", bad)):
        stats = DPStats()
        sat = davis_putnam(clauses, elimination, stats=stats)
        print(f"{label:<18} sat={sat}  resolvents={stats.resolvents:>5}  "
              f"peak clauses={stats.peak_clauses:>5}")

    truth = clauses_satisfiable_bruteforce(clauses, n)
    assert decide_ncq(ncq, db) == truth
    print(f"(cross-checked against brute force over 2^{n} assignments: {truth})")

    banner("3. The alpha-acyclicity trap (Section 4.5's opening)")
    hard_cnf = [[1, 2], [-2, 3], [-3, -1], [1, 3]]
    acyclified, db2 = cnf_as_acyclic_ncq(hard_cnf, 3)
    alpha, beta = is_alpha_but_not_beta(acyclified)
    print(f"after conjoining 'not Full(x1..x3)' with Full = {{}}:")
    print(f"  alpha-acyclic: {alpha}   beta-acyclic: {beta}")
    print(f"  still equisatisfiable: decide = {decide_ncq(acyclified, db2)}, "
          f"brute force = "
          f"{clauses_satisfiable_bruteforce([frozenset(c) for c in hard_cnf], 3)}")
    print("-> alpha-acyclicity buys nothing for negative queries; the")
    print("   tractability frontier is beta-acyclicity (Theorem 4.31)")


if __name__ == "__main__":
    main()
