"""Log analytics: the counting story (Section 4.4 of the paper, live).

Over a synthetic web-shop event log we answer:

* "how many (session, product, campaign) combinations converted" —
  a quantifier-free acyclic count, polynomial combined complexity
  (Theorem 4.21), here with *weighted* counting: summing basket values
  instead of 1s gives revenue attribution for free (#F-ACQ^0);
* the same aggregate with sessions projected out — quantified star size
  jumps, and the engine transparently switches to the Theorem 4.28
  algorithm whose cost scales as ||D||^(star size): we sweep star sizes
  1, 2, 3 and print the measured times;
* the perfect-matching connection (Equation 2): assigning couriers to
  orders one-to-one is a permanent, computed through 2^n calls to the
  *tractable* counting oracle — watching an easy problem power a #P-hard
  one.

Run:  python examples/log_analytics.py
"""

import random
import time

from repro import Database, Relation, classify, parse_query
from repro.counting.acq_count import count_acq, count_quantifier_free_acyclic
from repro.counting.matchings import (
    count_perfect_matchings_bruteforce,
    count_perfect_matchings_via_acq,
)
from repro.counting.weighted import WeightFunction
from repro.data.generators import random_bipartite_graph
from repro.logic.parser import parse_cq


def event_log(n_sessions: int, seed: int = 0) -> Database:
    rng = random.Random(seed)
    views = Relation("View", 2)      # (session, product)
    buys = Relation("Buy", 2)        # (session, product)
    sourced = Relation("Src", 2)     # (session, campaign)
    price = {}
    products = [f"p{i}" for i in range(50)]
    campaigns = [f"c{i}" for i in range(8)]
    for p in products:
        price[p] = rng.randint(5, 200)
    for s in range(n_sessions):
        sourced.add((s, rng.choice(campaigns)))
        for _ in range(rng.randint(1, 6)):
            p = rng.choice(products)
            views.add((s, p))
            if rng.random() < 0.3:
                buys.add((s, p))
    db = Database([views, buys, sourced])
    db.add_domain_values(range(n_sessions))
    return db, price


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    db, price = event_log(3000, seed=1)

    banner("1. Quantifier-free acyclic counting (Theorem 4.21)")
    conv = parse_cq("Conv(s, p, c) :- Buy(s, p), Src(s, c)")
    print(classify(conv).verdict("count").render())
    n = count_quantifier_free_acyclic(conv, db)
    print(f"converted (session, product, campaign) triples: {n}")

    weights = WeightFunction(lambda v: price.get(v, 1))
    revenue = count_quantifier_free_acyclic(conv, db, weights)
    print(f"price-weighted count (revenue attribution): {revenue}")

    banner("2. Star-size sweep: counting cost scales as ||D||^s (Thm 4.28)")
    sweep = [
        ("s = 1 (free-connex)", "Q(s) :- Buy(s, p), Src(s, c)"),
        ("s = 2", "Q(p, c) :- Buy(s, p), Src(s, c)"),
        ("s = 3", "Q(p, c, p2) :- Buy(s, p), Src(s, c), View(s, p2)"),
    ]
    print(f"{'query':<22} {'star size':>9} {'count':>10} {'time (ms)':>10}")
    for label, text in sweep:
        q = parse_cq(text)
        start = time.perf_counter()
        result = count_acq(q, db)
        elapsed = (time.perf_counter() - start) * 1e3
        print(f"{label:<22} {q.quantified_star_size():>9} {result:>10} "
              f"{elapsed:>10.1f}")

    banner("3. Courier assignment = permanent via #ACQ oracle (Equation 2)")
    couriers_orders, couriers, orders = random_bipartite_graph(7, 0.5, seed=3)
    start = time.perf_counter()
    via_acq = count_perfect_matchings_via_acq(couriers_orders, couriers, orders)
    t1 = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    brute = count_perfect_matchings_bruteforce(couriers_orders, couriers, orders)
    t2 = (time.perf_counter() - start) * 1e3
    print(f"one-to-one courier assignments: {via_acq} "
          f"(via 2^7 ACQ-count calls, {t1:.1f} ms; Ryser {t2:.1f} ms)")
    assert via_acq == brute


if __name__ == "__main__":
    main()
