"""Approximate counting: the Karp-Luby FPRAS (Section 5.1 of the paper,
live) on a reliability workload.

A content delivery network is up if ANY of its delivery paths works; each
path is a conjunction of link states.  "In how many link-state worlds is
the CDN up?" is exactly #DNF — #P-complete to answer exactly, but
admitting a fully polynomial randomised approximation scheme (Definition
5.4).  We:

* compare the estimator against the exact count (inclusion-exclusion)
  across epsilon values — watching the error obey the bound while the
  sample budget grows like 1/epsilon^2;
* push the instance beyond brute force (60 variables) where ONLY the
  FPRAS and the (term-count-exponential) inclusion-exclusion still run;
* rebuild Example 5.1: the same formula as a Sigma^rel_1 structure whose
  satisfying relations are in bijection with the DNF's models.

Run:  python examples/approximate_counting.py
"""

import time

from repro.counting.approx import (
    count_so_models_bruteforce,
    encode_3dnf,
    exact_dnf_count,
    exact_dnf_count_inclusion_exclusion,
    karp_luby_dnf,
)
from repro.data.generators import random_kdnf
from repro.logic.prefix import classify_prefix


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    banner("1. FPRAS accuracy vs epsilon (Definition 5.4)")
    n_vars, n_terms = 16, 12
    terms = random_kdnf(n_vars, n_terms, k=3, seed=7)
    exact = exact_dnf_count_inclusion_exclusion(terms, n_vars)
    print(f"paths (terms): {n_terms}, links (vars): {n_vars}, "
          f"exact #up-worlds = {exact}")
    print(f"{'epsilon':>8} {'estimate':>12} {'rel. error':>11} {'time (ms)':>10}")
    for eps in (0.5, 0.2, 0.1, 0.05):
        start = time.perf_counter()
        est = karp_luby_dnf(terms, n_vars, epsilon=eps, seed=1)
        ms = (time.perf_counter() - start) * 1e3
        rel = abs(est - exact) / exact
        print(f"{eps:>8} {est:>12.0f} {rel:>11.4f} {ms:>10.1f}")

    banner("2. Beyond brute force: 60 variables")
    big_terms = random_kdnf(60, 25, k=3, seed=2)
    exact_big = exact_dnf_count_inclusion_exclusion(big_terms, 60)
    est_big = karp_luby_dnf(big_terms, 60, epsilon=0.1, seed=3)
    print(f"exact (inclusion-exclusion over 2^25 term subsets would be too")
    print(f"much; over consistent subsets it is fine): {exact_big}")
    print(f"Karp-Luby estimate: {est_big:.3e} "
          f"(rel. error {abs(est_big - exact_big) / exact_big:.4f})")

    banner("3. Example 5.1: #3DNF as a #Sigma^rel_1 problem")
    small = random_kdnf(5, 4, k=3, seed=5)
    enc = encode_3dnf(small, 5)
    print(f"Phi_0(T) lives in {classify_prefix(enc.formula)}")
    assert count_so_models_bruteforce(enc) == exact_dnf_count(small, 5)
    print(f"|{{T : A_phi |= Phi_0(T)}}| = {count_so_models_bruteforce(enc)} "
          f"= #models of the 3-DNF  (bijection verified)")


if __name__ == "__main__":
    main()
