"""Quickstart: parse a query, classify it against the paper's map, then
decide / count / enumerate with the automatically selected engine.

Run:  python examples/quickstart.py
"""

from repro import Database, classify, count, decide, enumerate_answers, parse_query


def main() -> None:
    # A tiny "follows" graph and a tagging relation
    db = Database.from_relations({
        "Follows": [
            ("ana", "bo"), ("bo", "cy"), ("cy", "dee"),
            ("ana", "cy"), ("dee", "bo"), ("eve", "ana"),
        ],
        "Tagged": [
            ("bo", "databases"), ("cy", "logic"),
            ("cy", "databases"), ("dee", "logic"),
        ],
    })

    print("=" * 72)
    print("1. A free-connex query: feed with provenance (who, via whom, what)")
    print("=" * 72)
    # keeping the middleman in the head makes the query free-connex;
    # projecting him out would create the hard matrix-multiplication shape
    q = parse_query("Q(src, mid, topic) :- Follows(src, mid), Tagged(mid, topic)")
    report = classify(q)
    print(report.render())
    print()
    print(f"|Q(D)| = {count(q, db)} answers, enumerated with constant delay:")
    for row in enumerate_answers(q, db):
        print("   ", row)

    print()
    print("=" * 72)
    print("2. The matrix-multiplication-shaped query (NOT free-connex)")
    print("=" * 72)
    pi = parse_query("Pi(x, y) :- Follows(x, z), Follows(z, y)")
    report = classify(pi)
    print(report.render())
    print()
    print("Still enumerable (linear delay, Algorithm 2):")
    for row in enumerate_answers(pi, db):
        print("   ", row)

    print()
    print("=" * 72)
    print("3. Boolean queries and disequalities")
    print("=" * 72)
    boolean = parse_query("Q() :- Follows(x, y), Follows(y, x)")
    print(f"mutual-follow pair exists: {decide(boolean, db)}")
    diseq = parse_query(
        "Q(a, b) :- Follows(a, m), Follows(b, m2), a != b")
    print(f"distinct follower pairs: {count(diseq, db)}")
    print(classify(diseq).verdict("enumerate").render())


if __name__ == "__main__":
    main()
