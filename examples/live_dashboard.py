"""A live dashboard: query evaluation under updates + random access
(the library's beyond-the-paper extensions; the survey's conclusion
flags dynamic evaluation as the next chapter of this story).

Scenario: a ride-hailing ops dashboard.  Drivers go on/off shift and
zones open/close continuously; the dashboard needs, at all times,

* "is any ride possible right now?"            (satisfiability)
* "how many (driver) options are live?"        (counting)
* "show me 5 random live options"              (sampling)
* the j-th option in a stable order            (pagination!)

A :class:`DynamicFreeConnexView` absorbs the update stream at
microseconds per event; :class:`RandomAccessEnumerator` pages into the
answer set without materialising it.

Run:  python examples/live_dashboard.py
"""

import random
import time

from repro.data.database import Database
from repro.data.relation import Relation
from repro.dynamic import DynamicFreeConnexView
from repro.enumeration.random_access import RandomAccessEnumerator
from repro.logic.parser import parse_cq


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    rng = random.Random(4)
    # Driver(driver, zone): who is on shift where;
    # Open(zone, slot): which pickup slots a zone currently serves
    query = parse_cq("Live(driver) :- Driver(driver, zone), Open(zone, slot)")
    view = DynamicFreeConnexView(query)

    banner("1. Absorbing the update stream")
    zones = [f"z{i}" for i in range(30)]
    events = 30000
    start = time.perf_counter()
    on_shift = set()
    open_slots = set()
    for i in range(events):
        if rng.random() < 0.6:
            driver = f"d{rng.randrange(2000)}"
            zone = rng.choice(zones)
            if (driver, zone) in on_shift and rng.random() < 0.5:
                on_shift.discard((driver, zone))
                view.delete("Driver", (driver, zone))
            else:
                on_shift.add((driver, zone))
                view.insert("Driver", (driver, zone))
        else:
            zone = rng.choice(zones)
            slot = rng.randrange(6)
            if (zone, slot) in open_slots and rng.random() < 0.5:
                open_slots.discard((zone, slot))
                view.delete("Open", (zone, slot))
            else:
                open_slots.add((zone, slot))
                view.insert("Open", (zone, slot))
    elapsed = time.perf_counter() - start
    print(f"{events} events in {elapsed*1e3:.0f} ms "
          f"({elapsed/events*1e6:.1f} us/event)")
    print(f"live right now: satisfiable={view.is_satisfiable()}  "
          f"live drivers={view.count_answers()}")
    print(f"view state: {view.stats()}")

    banner("2. A zone outage, and the dashboard reacts instantly")
    victim = zones[0]
    affected = [slot for (z, slot) in open_slots if z == victim]
    before = view.count_answers()
    start = time.perf_counter()
    for slot in affected:
        view.delete("Open", (victim, slot))
    outage_ms = (time.perf_counter() - start) * 1e3
    print(f"closed {len(affected)} slots of {victim} in {outage_ms:.2f} ms; "
          f"live drivers {before} -> {view.count_answers()}")
    for slot in affected:
        view.insert("Open", (victim, slot))
    print(f"restored: {view.count_answers()}")

    banner("3. Pagination and sampling without materialising")
    # freeze the current state into a database for the random-access index
    driver_rel = Relation("Driver", 2, sorted(on_shift))
    open_rel = Relation("Open", 2, sorted(open_slots))
    db = Database([driver_rel, open_rel])
    ra = RandomAccessEnumerator(query, db)
    n = ra.count()
    print(f"answers: {n}")
    page = [ra.answer(j) for j in range(min(5, n))]
    print(f"page 1 (answers 0..4):        {page}")
    mid = [ra.answer(j) for j in range(n // 2, min(n // 2 + 5, n))]
    print(f"page from the middle:         {mid}")
    print(f"5 random live options:        {ra.sample(5, seed=7, replacement=False)}")
    start = time.perf_counter()
    for j in range(0, n, max(1, n // 1000)):
        ra.answer(j)
    probes = len(range(0, n, max(1, n // 1000)))
    print(f"{probes} random-access probes: "
          f"{(time.perf_counter()-start)/probes*1e6:.1f} us each")


if __name__ == "__main__":
    main()
