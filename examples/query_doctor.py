"""The query doctor: static analysis of a query workload.

For each query of a workload this script

* minimises it (Chandra-Merlin core — redundant atoms silently change
  the structural classification, so the analysis runs on the core);
* classifies the core against the paper's map (acyclic? free-connex?
  star size? which theorem governs each task);
* when the query is NOT free-connex, searches for the smallest
  head extension (adding existing body variables to the head) that
  makes it free-connex — the practical "keep the middleman in the
  output and you get constant delay" advice of Theorem 4.6 vs 4.8;
* prints DOT for the hypergraph so you can *see* the structure
  (pipe into `dot -Tpng`).

Run:  python examples/query_doctor.py
"""

from itertools import combinations

from repro import classify, parse_query
from repro.logic.containment import are_equivalent, core, is_minimal
from repro.viz import query_to_dot

WORKLOAD = [
    # a redundant self-join: the core is smaller
    "Q1(x) :- Follows(x, y), Follows(x, z), Tagged(y, t)",
    # the matrix-multiplication shape
    "Q2(a, c) :- Follows(a, b), Follows(b, c)",
    # free-connex as written
    "Q3(a, b, t) :- Follows(a, b), Tagged(b, t)",
    # cyclic
    "Q4(x) :- Follows(x, y), Follows(y, z), Follows(z, x)",
    # acyclic, star size 3
    "Q5(t, u, v) :- Tagged(s, t), Src(s, u), View(s, v)",
]


def suggest_head_extension(q):
    """The smallest set of body variables whose addition to the head
    makes the query free-connex, if any."""
    candidates = [v for v in q.variables() if v not in q.free_variables()]
    for r in range(1, len(candidates) + 1):
        for extra in combinations(candidates, r):
            widened = q.with_head(list(q.head) + list(extra))
            if widened.is_acyclic() and widened.is_free_connex():
                return extra
    return None


def main() -> None:
    for text in WORKLOAD:
        q = parse_query(text)
        print("=" * 72)
        print("query:  ", q)
        minimal = core(q)
        if not is_minimal(q):
            assert are_equivalent(q, minimal)
            print("core:   ", minimal, " (redundant atoms removed)")
        report = classify(minimal)
        print(f"class:   {report.query_class}   "
              f"facts: acyclic={report.fact('acyclic')} "
              f"free_connex={report.fact('free_connex')} "
              f"star={report.fact('quantified_star_size')}")
        for verdict in report.verdicts:
            print("  " + verdict.render().splitlines()[0])
        if report.fact("acyclic") and report.fact("free_connex") is False:
            extra = suggest_head_extension(minimal)
            if extra is not None:
                names = ", ".join(v.name for v in extra)
                print(f"  doctor's note: adding [{names}] to the head makes "
                      f"the query free-connex (constant delay, Theorem 4.6)")
        print()
    print("=" * 72)
    print("DOT of Q2's hypergraph (pipe into `dot -Tpng`):")
    print(query_to_dot(parse_query(WORKLOAD[1]), name="Q2"))


if __name__ == "__main__":
    main()
